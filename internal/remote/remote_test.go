package remote

// The remote tier's contract in three layers: (1) transparency — a
// healthy remote N-shard fleet answers bitwise identically to the
// in-process coordinator and to a single engine over the unsplit
// index; (2) robustness — retries, hedging, breaker, and timeouts
// behave and are counted; (3) availability — quorum answers are sound
// subsets, and a rolling restart of shard processes fails zero
// queries. The wire format's defensive decoding is pinned by table
// tests.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bestjoin/internal/engine"
	"bestjoin/internal/index"
	"bestjoin/internal/shard"
)

var remoteVocab = []string{
	"amber", "basalt", "cedar", "delta", "ember", "fjord",
	"garnet", "harbor", "indigo", "jasper", "krill", "lumen",
}

func remoteCorpus(rng *rand.Rand) []string {
	docs := make([]string, 30+rng.Intn(40))
	for d := range docs {
		body := ""
		for i := 15 + rng.Intn(30); i > 0; i-- {
			if body != "" {
				body += " "
			}
			body += remoteVocab[rng.Intn(len(remoteVocab))]
		}
		docs[d] = body
	}
	return docs
}

func remoteConcepts(rng *rand.Rand) []index.Concept {
	concepts := make([]index.Concept, 1+rng.Intn(3))
	for i := range concepts {
		c := index.Concept{}
		for n := 1 + rng.Intn(3); n > 0; n-- {
			c[remoteVocab[rng.Intn(len(remoteVocab))]] = 1 - rng.Float64()
		}
		concepts[i] = c
	}
	return concepts
}

func buildCompact(t testing.TB, docs []string) *index.Compact {
	t.Helper()
	ix := index.New()
	for d, body := range docs {
		ix.AddText(d, body)
	}
	return ix.Compact()
}

// remoteSpecs enumerates the kernel specs under test — the samples a
// wire query can actually name.
func remoteSpecs() []engine.KernelSpec {
	return []engine.KernelSpec{
		{Family: "win", Alpha: 0.07},
		{Family: "med", Alpha: 0.05},
		{Family: "max", Alpha: 0.1},
		{Family: "win", Alpha: 0.07, Valid: true},
		{Family: "med", Alpha: 0.05, Valid: true},
		{Family: "max", Alpha: 0.1, Valid: true},
	}
}

// startFleet partitions the index across n shard servers (each a real
// HTTP server wrapping a real engine) and returns their addresses
// plus a shutdown func.
func startFleet(t testing.TB, compact *index.Compact, n int, ecfg engine.Config) []string {
	t.Helper()
	parts, err := compact.Partition(n)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, n)
	for i, p := range parts {
		mux := http.NewServeMux()
		NewServer(engine.New(p, ecfg), ServerConfig{}).Register(mux)
		ts := httptest.NewServer(mux)
		t.Cleanup(ts.Close)
		addrs[i] = ts.URL
	}
	return addrs
}

// fastCfg is the shard-client config for transparency tests: patient
// timers, no hedging or retries — those paths have their own tests,
// and under -race a valid-join union query can legitimately run long,
// so stacked speculative attempts would only snowball load.
func fastCfg() ShardConfig {
	return ShardConfig{Timeout: 2 * time.Minute, Retries: -1, HedgeAfter: -1, Backoff: time.Millisecond}
}

func assertSame(t *testing.T, label string, got, want *engine.Result, pureAND bool) {
	t.Helper()
	if got.Partial != want.Partial || got.Degraded != want.Degraded {
		t.Fatalf("%s: flags Partial=%v/Degraded=%v, want %v/%v",
			label, got.Partial, got.Degraded, want.Partial, want.Degraded)
	}
	if pureAND && got.Candidates != want.Candidates {
		t.Fatalf("%s: Candidates %d, want %d", label, got.Candidates, want.Candidates)
	}
	if len(got.Docs) != len(want.Docs) {
		t.Fatalf("%s: %d docs, want %d\ngot:  %+v\nwant: %+v",
			label, len(got.Docs), len(want.Docs), got.Docs, want.Docs)
	}
	for i := range got.Docs {
		g, w := got.Docs[i], want.Docs[i]
		if g.Doc != w.Doc || g.Score != w.Score {
			t.Fatalf("%s: rank %d: doc %d score %v, want doc %d score %v",
				label, i, g.Doc, g.Score, w.Doc, w.Score)
		}
		if len(g.Set) != len(w.Set) {
			t.Fatalf("%s: rank %d (doc %d): matchset size %d, want %d",
				label, i, g.Doc, len(g.Set), len(w.Set))
		}
		for j := range g.Set {
			if g.Set[j] != w.Set[j] {
				t.Fatalf("%s: rank %d (doc %d) match %d: %+v, want %+v",
					label, i, g.Doc, j, g.Set[j], w.Set[j])
			}
		}
	}
}

// TestRemoteDifferential is the transparency acceptance test: for
// every shard count, kernel spec, and query shape, the healthy remote
// fleet's answer is bitwise identical to the in-process coordinator's
// and to a single engine's over the unsplit index. Only Spec rides
// the queries, so all three paths provably construct their kernels
// from the same three serializable fields.
func TestRemoteDifferential(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		rng := rand.New(rand.NewSource(seed))
		docs := remoteCorpus(rng)
		compact := buildCompact(t, docs)
		single := engine.New(compact, engine.Config{Workers: 2})
		for _, n := range []int{1, 2, 3} {
			local, err := shard.New(compact, shard.Config{Shards: n, Engine: engine.Config{Workers: 2}})
			if err != nil {
				t.Fatal(err)
			}
			fleet, err := NewFleet(startFleet(t, compact, n, engine.Config{Workers: 2}), fastCfg(), shard.Config{})
			if err != nil {
				t.Fatal(err)
			}
			for _, spec := range remoteSpecs() {
				for round := 0; round < 2; round++ {
					concepts := remoteConcepts(rng)
					q := engine.Query{Concepts: concepts, Spec: spec, K: 1 + rng.Intn(8)}
					pureAND := true
					switch rng.Intn(3) {
					case 1:
						q.Mode = engine.ModeOR
						pureAND = false
					case 2:
						q.MinMatch = 1 + rng.Intn(len(concepts))
						pureAND = false
					}
					label := fmt.Sprintf("seed %d shards %d spec %+v round %d", seed, n, spec, round)
					want, err := single.Search(context.Background(), q)
					if err != nil {
						t.Fatalf("%s: single: %v", label, err)
					}
					lres, err := local.Search(context.Background(), q)
					if err != nil {
						t.Fatalf("%s: local coordinator: %v", label, err)
					}
					assertSame(t, label+" (local)", lres, want, pureAND)
					rres, err := fleet.Search(context.Background(), q)
					if err != nil {
						t.Fatalf("%s: remote fleet: %v", label, err)
					}
					assertSame(t, label+" (remote)", rres, want, pureAND)
				}
			}
		}
	}
}

// TestRemoteQuorumDegraded kills one of three shard processes and
// asserts the quorum-2 fleet still answers with a sound subset while
// the strict fleet fails; retry and failure accounting must tick.
func TestRemoteQuorumDegraded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	docs := remoteCorpus(rng)
	compact := buildCompact(t, docs)
	full := engine.New(compact, engine.Config{Workers: 2})

	parts, err := compact.Partition(3)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, 3)
	var dead *httptest.Server
	for i, p := range parts {
		mux := http.NewServeMux()
		NewServer(engine.New(p, engine.Config{Workers: 1}), ServerConfig{}).Register(mux)
		ts := httptest.NewServer(mux)
		t.Cleanup(ts.Close)
		addrs[i] = ts.URL
		if i == 1 {
			dead = ts
		}
	}
	dead.Close()

	scfg := ShardConfig{Timeout: time.Second, Backoff: time.Millisecond}
	spec := engine.KernelSpec{Family: "med", Alpha: 0.05, Valid: true}
	concepts := remoteConcepts(rng)

	strict, err := NewFleet(addrs, scfg, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := strict.Search(context.Background(),
		engine.Query{Concepts: concepts, Spec: spec, K: 5}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("strict fleet with a dead shard: err %v, want ErrUnavailable", err)
	}

	fleet, err := NewFleet(addrs, scfg, shard.Config{Quorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	fullRes, err := full.Search(context.Background(),
		engine.Query{Concepts: concepts, Spec: spec, K: len(docs)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fleet.Search(context.Background(),
		engine.Query{Concepts: concepts, Spec: spec, K: 5})
	if err != nil {
		t.Fatalf("quorum-2 fleet with a dead shard: %v", err)
	}
	if !res.Degraded || res.FailedShards != 1 {
		t.Fatalf("Degraded=%v FailedShards=%d, want true/1", res.Degraded, res.FailedShards)
	}
	rank := map[int]int{}
	for i, d := range fullRes.Docs {
		rank[d.Doc] = i
	}
	prev := -1
	for _, d := range res.Docs {
		i, ok := rank[d.Doc]
		if !ok || fullRes.Docs[i].Score != d.Score {
			t.Fatalf("degraded answer doc %d (score %v) not in the healthy ranking", d.Doc, d.Score)
		}
		if i <= prev {
			t.Fatalf("degraded answer breaks healthy rank order at doc %d", d.Doc)
		}
		prev = i
	}
	st := fleet.Stats()
	if st.QuorumDegraded == 0 || st.ShardFailures == 0 {
		t.Fatalf("QuorumDegraded=%d ShardFailures=%d, want both > 0", st.QuorumDegraded, st.ShardFailures)
	}
	if st.Retried == 0 {
		t.Fatalf("dead shard produced no retries; Stats %+v", st)
	}
}

// TestRemoteRetriesRecover pins the retry loop: a shard that answers
// 500 twice then recovers must yield a successful search with the
// retries counted, not an error.
func TestRemoteRetriesRecover(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	compact := buildCompact(t, remoteCorpus(rng))
	eng := engine.New(compact, engine.Config{Workers: 1})
	inner := http.NewServeMux()
	NewServer(eng, ServerConfig{}).Register(inner)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/shardquery" && calls.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	s := NewShard(ts.URL, ShardConfig{Timeout: time.Second, Backoff: time.Millisecond, HedgeAfter: -1})
	res, err := s.Search(context.Background(), engine.Query{
		Concepts: remoteConcepts(rng),
		Spec:     engine.KernelSpec{Family: "med", Alpha: 0.05},
		K:        3,
	})
	if err != nil {
		t.Fatalf("search after transient 500s: %v", err)
	}
	if res == nil {
		t.Fatal("nil result")
	}
	if got := s.Stats().Retried; got != 2 {
		t.Fatalf("Retried = %d, want 2", got)
	}
}

// TestRemoteBreaker pins the circuit breaker: after threshold
// consecutive failed searches the client fails fast without touching
// the network, and the cooldown admits a probe that can close it.
func TestRemoteBreaker(t *testing.T) {
	var calls atomic.Int64
	healthy := atomic.Bool{}
	rng := rand.New(rand.NewSource(21))
	compact := buildCompact(t, remoteCorpus(rng))
	eng := engine.New(compact, engine.Config{Workers: 1})
	inner := http.NewServeMux()
	NewServer(eng, ServerConfig{}).Register(inner)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/shardquery" {
			inner.ServeHTTP(w, r)
			return
		}
		calls.Add(1)
		if !healthy.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	s := NewShard(ts.URL, ShardConfig{
		Timeout: time.Second, Retries: -1, HedgeAfter: -1,
		BreakerThreshold: 2, BreakerCooldown: 50 * time.Millisecond,
	})
	q := engine.Query{
		Concepts: remoteConcepts(rng),
		Spec:     engine.KernelSpec{Family: "med", Alpha: 0.05},
		K:        3,
	}
	for i := 0; i < 2; i++ {
		if _, err := s.Search(context.Background(), q); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("search %d: err %v, want ErrUnavailable", i, err)
		}
	}
	before := calls.Load()
	if _, err := s.Search(context.Background(), q); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("breaker-open search: err %v, want ErrUnavailable", err)
	}
	if calls.Load() != before {
		t.Fatalf("open breaker still hit the network (%d calls, had %d)", calls.Load(), before)
	}
	if s.Stats().BreakerOpen == 0 {
		t.Fatal("BreakerOpen not counted")
	}

	// Cooldown elapses, the shard has recovered: the half-open probe
	// must close the breaker again.
	healthy.Store(true)
	time.Sleep(60 * time.Millisecond)
	if _, err := s.Search(context.Background(), q); err != nil {
		t.Fatalf("probe after recovery: %v", err)
	}
	if _, err := s.Search(context.Background(), q); err != nil {
		t.Fatalf("search after breaker closed: %v", err)
	}
}

// TestRemoteHedging pins the hedge path: when the first attempt
// stalls, a duplicate launches after HedgeAfter and its fast answer
// wins — the caller never waits out the stall.
func TestRemoteHedging(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	compact := buildCompact(t, remoteCorpus(rng))
	eng := engine.New(compact, engine.Config{Workers: 1})
	inner := http.NewServeMux()
	NewServer(eng, ServerConfig{}).Register(inner)
	var first atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/shardquery" && first.CompareAndSwap(false, true) {
			select { // stall the first request until the client gives up on it
			case <-r.Context().Done():
				return
			case <-time.After(5 * time.Second):
			}
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	s := NewShard(ts.URL, ShardConfig{Timeout: 10 * time.Second, HedgeAfter: 10 * time.Millisecond})
	start := time.Now()
	_, err := s.Search(context.Background(), engine.Query{
		Concepts: remoteConcepts(rng),
		Spec:     engine.KernelSpec{Family: "med", Alpha: 0.05},
		K:        3,
	})
	if err != nil {
		t.Fatalf("hedged search: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hedge did not rescue the stalled attempt: took %v", elapsed)
	}
	if s.Stats().Hedged == 0 {
		t.Fatal("Hedged not counted")
	}
}

// TestRemoteTimeoutCounted pins the per-attempt deadline budget: a
// shard slower than Timeout costs a counted timeout and retries.
func TestRemoteTimeoutCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	compact := buildCompact(t, remoteCorpus(rng))
	eng := engine.New(compact, engine.Config{Workers: 1})
	inner := http.NewServeMux()
	NewServer(eng, ServerConfig{}).Register(inner)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/shardquery" && calls.Add(1) == 1 {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(5 * time.Second):
			}
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	s := NewShard(ts.URL, ShardConfig{Timeout: 30 * time.Millisecond, Backoff: time.Millisecond, HedgeAfter: -1})
	if _, err := s.Search(context.Background(), engine.Query{
		Concepts: remoteConcepts(rng),
		Spec:     engine.KernelSpec{Family: "med", Alpha: 0.05},
		K:        3,
	}); err != nil {
		t.Fatalf("search with one slow attempt: %v", err)
	}
	st := s.Stats()
	if st.ShardTimeouts == 0 || st.Retried == 0 {
		t.Fatalf("ShardTimeouts=%d Retried=%d, want both > 0", st.ShardTimeouts, st.Retried)
	}
}

// TestRemoteSwapIndexRoll rolls a remote fleet onto a new corpus
// through Coordinator.SwapIndex: each shard process receives its
// partition over /swapindex, the health gate sees them come back, and
// the post-roll fleet answers bitwise like a single engine over the
// new corpus.
func TestRemoteSwapIndexRoll(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	oldDocs := remoteCorpus(rng)
	compact := buildCompact(t, oldDocs)
	addrs := startFleet(t, compact, 2, engine.Config{Workers: 1})
	fleet, err := NewFleet(addrs, fastCfg(), shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if h := fleet.Health(); !h.Ready || h.Epoch != 0 {
		t.Fatalf("fresh remote fleet: Ready=%v Epoch=%d", h.Ready, h.Epoch)
	}

	newDocs := remoteCorpus(rng)
	newCompact := buildCompact(t, newDocs)
	fleet.SwapIndex(newCompact)

	h := fleet.Health()
	if !h.Ready || h.Epoch != 1 || h.Err != "" {
		t.Fatalf("post-roll: Ready=%v Epoch=%d Err=%q, want true/1/\"\"", h.Ready, h.Epoch, h.Err)
	}
	single := engine.New(newCompact, engine.Config{Workers: 1})
	spec := engine.KernelSpec{Family: "max", Alpha: 0.1}
	for round := 0; round < 3; round++ {
		q := engine.Query{Concepts: remoteConcepts(rng), Spec: spec, K: 5}
		want, err := single.Search(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fleet.Search(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		assertSame(t, fmt.Sprintf("post-roll round %d", round), got, want, true)
	}
}

// shardProc is one restartable shard process for the rolling-restart
// test: a real HTTP server on a fixed address.
type shardProc struct {
	addr string
	part *index.Compact
	hs   *http.Server
	done chan struct{}
}

func (p *shardProc) start(t *testing.T) {
	t.Helper()
	ln, err := net.Listen("tcp", p.addr)
	if err != nil {
		t.Fatalf("listen %s: %v", p.addr, err)
	}
	if p.addr == "" || strings.HasSuffix(p.addr, ":0") {
		p.addr = ln.Addr().String()
	}
	mux := http.NewServeMux()
	NewServer(engine.New(p.part, engine.Config{Workers: 1}), ServerConfig{}).Register(mux)
	p.hs = &http.Server{Handler: mux}
	p.done = make(chan struct{})
	go func() {
		defer close(p.done)
		p.hs.Serve(ln)
	}()
}

func (p *shardProc) stop() {
	p.hs.Close()
	<-p.done
}

// TestRemoteRollingRestart is the availability acceptance test: shard
// processes restart one at a time under continuous query load, and
// with quorum 1 not a single query fails — answers during the outage
// degrade to sound subsets and snap back to the full baseline after.
func TestRemoteRollingRestart(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	docs := remoteCorpus(rng)
	compact := buildCompact(t, docs)
	parts, err := compact.Partition(2)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]*shardProc, 2)
	addrs := make([]string, 2)
	for i, p := range parts {
		procs[i] = &shardProc{addr: "127.0.0.1:0", part: p}
		procs[i].start(t)
		defer procs[i].stop()
		addrs[i] = procs[i].addr
	}
	// The breaker cooldown must be shorter than the pause between the
	// two restarts, or shard 0's still-open breaker overlaps shard 1's
	// outage and the fleet momentarily has no answerable shard.
	fleet, err := NewFleet(addrs,
		ShardConfig{Timeout: 2 * time.Second, Backoff: time.Millisecond, Retries: 3,
			BreakerCooldown: 10 * time.Millisecond},
		shard.Config{Quorum: 1})
	if err != nil {
		t.Fatal(err)
	}

	spec := engine.KernelSpec{Family: "med", Alpha: 0.05, Valid: true}
	concepts := remoteConcepts(rng)
	q := engine.Query{Concepts: concepts, Spec: spec, K: 5}
	baseline, err := fleet.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Degraded {
		t.Fatal("baseline over a healthy fleet is degraded")
	}

	stop := make(chan struct{})
	var failures atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := fleet.Search(context.Background(), q)
				if err != nil {
					failures.Add(1)
					t.Errorf("query failed during rolling restart: %v", err)
					return
				}
				if !res.Degraded {
					// A full-fleet answer must be the baseline, bitwise —
					// restarts change availability, never content.
					if len(res.Docs) != len(baseline.Docs) {
						failures.Add(1)
						t.Errorf("full answer has %d docs, baseline %d", len(res.Docs), len(baseline.Docs))
						return
					}
					for i := range res.Docs {
						if res.Docs[i].Doc != baseline.Docs[i].Doc || res.Docs[i].Score != baseline.Docs[i].Score {
							failures.Add(1)
							t.Errorf("full answer diverges from baseline at rank %d", i)
							return
						}
					}
				}
			}
		}()
	}

	for _, p := range procs {
		p.stop()
		time.Sleep(30 * time.Millisecond) // queries run against the hole
		p.start(t)
		time.Sleep(100 * time.Millisecond) // breaker probes the restarted shard
	}
	close(stop)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d failures during rolling restart, want 0", failures.Load())
	}

	// Fleet healthy again: the answer must be the full baseline.
	res, err := fleet.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatal("post-restart fleet still answers degraded")
	}
}

// TestRemoteHealthUnreachable pins the client's health view of a dead
// address: never Ready, reason in Err.
func TestRemoteHealthUnreachable(t *testing.T) {
	s := NewShard("127.0.0.1:1", ShardConfig{Timeout: 200 * time.Millisecond})
	h := s.Health()
	if h.Ready {
		t.Fatal("unreachable shard reported Ready")
	}
	if h.Err == "" {
		t.Fatal("unreachable shard health has no Err")
	}
}

// TestServerRejects drives the server's defensive decode surface.
func TestServerRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	compact := buildCompact(t, remoteCorpus(rng))
	mux := http.NewServeMux()
	NewServer(engine.New(compact, engine.Config{Workers: 1}), ServerConfig{}).Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/shardquery", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	cases := []struct {
		name string
		body string
	}{
		{"malformed json", `{"concepts":`},
		{"unknown field", `{"concepts":[{"a":1}],"family":"med","alpha":0.1,"surprise":1}`},
		{"no concepts", `{"concepts":[],"family":"med","alpha":0.1}`},
		{"bad family", `{"concepts":[{"a":1}],"family":"cosine","alpha":0.1}`},
		{"bad mode", `{"concepts":[{"a":1}],"family":"med","alpha":0.1,"mode":"xor"}`},
		{"negative k", `{"concepts":[{"a":1}],"family":"med","alpha":0.1,"k":-1}`},
		{"huge k", `{"concepts":[{"a":1}],"family":"med","alpha":0.1,"k":999999999}`},
		{"min_match over n", `{"concepts":[{"a":1}],"family":"med","alpha":0.1,"min_match":5}`},
		{"negative budget", `{"concepts":[{"a":1}],"family":"med","alpha":0.1,"budget_ms":-5}`},
		{"nonfinite weight", `{"concepts":[{"a":1e999}],"family":"med","alpha":0.1}`},
	}
	for _, tc := range cases {
		if code := post(tc.body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
	}
	resp, err := http.Get(ts.URL + "/shardquery")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /shardquery: status %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/swapindex", "application/octet-stream", strings.NewReader("garbage"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("corrupt /swapindex: status %d, want 400", resp.StatusCode)
	}
}

// TestWireValidation drives the client-side result validation and the
// query encode edge cases.
func TestWireValidation(t *testing.T) {
	if _, err := EncodeQuery(engine.Query{Concepts: []index.Concept{{"a": 1}}}, 0); err == nil {
		t.Error("EncodeQuery without a kernel spec succeeded")
	}

	// A floor still at -Inf must not ride the wire (JSON cannot carry
	// it); a raised floor must, exactly.
	q := engine.Query{
		Concepts: []index.Concept{{"a": 1}},
		Spec:     engine.KernelSpec{Family: "med", Alpha: 0.1},
		Floor:    engine.NewGlobalFloor(),
	}
	wq, err := EncodeQuery(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if wq.Floor != nil {
		t.Errorf("-Inf floor encoded as %v, want omitted", *wq.Floor)
	}
	q.Floor.Raise(1.25)
	if wq, err = EncodeQuery(q, 0); err != nil {
		t.Fatal(err)
	}
	if wq.Floor == nil || *wq.Floor != 1.25 {
		t.Errorf("raised floor encoded as %v, want 1.25", wq.Floor)
	}

	bad := []struct {
		name string
		wr   WireResult
	}{
		{"negative doc", WireResult{Docs: []WireDoc{{Doc: -1, Score: 1}}}},
		{"nan score", WireResult{Docs: []WireDoc{{Doc: 0, Score: math.NaN()}}}},
		{"inf score", WireResult{Docs: []WireDoc{{Doc: 0, Score: math.Inf(1)}}}},
		{"rank order", WireResult{Docs: []WireDoc{{Doc: 0, Score: 1}, {Doc: 1, Score: 2}}}},
		{"tie order", WireResult{Docs: []WireDoc{{Doc: 2, Score: 1}, {Doc: 1, Score: 1}}}},
		{"dup doc", WireResult{Docs: []WireDoc{{Doc: 1, Score: 1}, {Doc: 1, Score: 1}}}},
		{"negative count", WireResult{Candidates: -1}},
		{"negative match loc", WireResult{Docs: []WireDoc{{Doc: 0, Score: 1, Set: []WireMatch{{Loc: -1, Score: 1}}}}}},
		{"nonfinite match", WireResult{Docs: []WireDoc{{Doc: 0, Score: 1, Set: []WireMatch{{Loc: 0, Score: math.NaN()}}}}}},
	}
	for _, tc := range bad {
		if err := tc.wr.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a corrupt result", tc.name)
		}
	}
	good := WireResult{Docs: []WireDoc{{Doc: 1, Score: 2}, {Doc: 0, Score: 1}, {Doc: 3, Score: 1}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid result rejected: %v", err)
	}
}

// TestRemoteStatsRollup checks the coordinator rollup includes both
// halves of the wire: the shard process's engine counters and the
// client's transport counters.
func TestRemoteStatsRollup(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	compact := buildCompact(t, remoteCorpus(rng))
	fleet, err := NewFleet(startFleet(t, compact, 2, engine.Config{Workers: 1}), fastCfg(), shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	q := engine.Query{
		Concepts: remoteConcepts(rng),
		Spec:     engine.KernelSpec{Family: "med", Alpha: 0.05},
		K:        3,
	}
	for i := 0; i < 3; i++ {
		if _, err := fleet.Search(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	st := fleet.Stats()
	if st.Queries != 3 || st.ShardQueries != 6 {
		t.Fatalf("Queries=%d ShardQueries=%d, want 3/6", st.Queries, st.ShardQueries)
	}
	// The shard processes' own engine counters must cross the wire
	// into the rollup: each served 3 queries.
	var served uint64
	for _, sh := range st.Shards {
		served += sh.Queries
	}
	if served != 6 {
		t.Fatalf("shard processes report %d served queries through /shardstats, want 6", served)
	}
}
