package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bestjoin/internal/engine"
	"bestjoin/internal/index"
	"bestjoin/internal/shard"
)

// ErrUnavailable marks a shard call that failed for transport-level
// reasons — connection refused, attempt timeout, 5xx, torn or corrupt
// response bytes, open circuit breaker. Unavailable errors are the
// retryable class; everything else (bad query, overload, parent
// cancellation) is not.
var ErrUnavailable = errors.New("remote: shard unavailable")

// ShardConfig tunes one remote shard client's robustness machinery.
// The zero value gets serving-grade defaults; negative values disable
// the corresponding mechanism.
type ShardConfig struct {
	// Timeout is the per-attempt deadline budget. Each attempt gets
	// min(Timeout, time left on the query context) — the budget rides
	// the wire too, so the shard stops working when the client stops
	// waiting. 0 means 2s.
	Timeout time.Duration
	// Retries is how many times a failed attempt is retried (attempts
	// = Retries+1). Only unavailability retries — a 400 or 429 means
	// the shard is alive and answering. 0 means 2; < 0 disables.
	Retries int
	// Backoff is the base delay before the first retry, doubled per
	// retry with ±50% jitter. 0 means 25ms.
	Backoff time.Duration
	// HedgeAfter is how long an attempt may run before a duplicate
	// request is launched against the same shard (first answer wins —
	// queries are idempotent reads, so hedging is safe). Once 16
	// latency samples accumulate, the observed p90 replaces this
	// static trigger. 0 means 50ms; < 0 disables hedging.
	HedgeAfter time.Duration
	// BreakerThreshold opens the circuit breaker after this many
	// consecutive failed searches; while open, searches fail fast
	// without touching the network until BreakerCooldown passes, then
	// a single probe is admitted (half-open). 0 means 5; < 0 disables.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before
	// admitting a probe. 0 means 500ms.
	BreakerCooldown time.Duration
	// Client optionally overrides the HTTP client (tests, custom
	// transports). nil means a dedicated client with sane pooling.
	Client *http.Client
}

func (cfg ShardConfig) resolved() ShardConfig {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	switch {
	case cfg.Retries == 0:
		cfg.Retries = 2
	case cfg.Retries < 0:
		cfg.Retries = 0
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 25 * time.Millisecond
	}
	switch {
	case cfg.HedgeAfter == 0:
		cfg.HedgeAfter = 50 * time.Millisecond
	case cfg.HedgeAfter < 0:
		cfg.HedgeAfter = 0 // disabled
	}
	switch {
	case cfg.BreakerThreshold == 0:
		cfg.BreakerThreshold = 5
	case cfg.BreakerThreshold < 0:
		cfg.BreakerThreshold = 0 // disabled
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 500 * time.Millisecond
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	return cfg
}

// Shard is an HTTP client for one shard process, implementing
// shard.Child so a shard.Coordinator composes over remote children
// exactly as over local engines. Safe for concurrent use.
type Shard struct {
	base string
	cfg  ShardConfig
	br   breaker
	lat  latRing

	hedged      atomic.Uint64
	retried     atomic.Uint64
	timeouts    atomic.Uint64
	breakerOpen atomic.Uint64
}

// Shard slots into a Coordinator as a child.
var _ shard.Child = (*Shard)(nil)

// NewShard builds a client for the shard process at base — a
// "host:port" or a full URL.
func NewShard(base string, cfg ShardConfig) *Shard {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	cfg = cfg.resolved()
	s := &Shard{base: base, cfg: cfg}
	s.br.threshold = cfg.BreakerThreshold
	s.br.cooldown = cfg.BreakerCooldown
	return s
}

// Base returns the shard's base URL.
func (s *Shard) Base() string { return s.base }

// Pin returns the shard's search call. A remote child cannot pin an
// index generation across processes — the process answers with
// whatever epoch it serves — which is exactly why Coordinator.Health
// refuses to call a mixed-epoch fleet ready.
func (s *Shard) Pin() shard.SearchFunc { return s.Search }

// Search runs one query against the shard with the full robustness
// stack: breaker fail-fast, per-attempt deadline budgets, hedging
// after the latency quantile, and bounded jittered-backoff retries on
// unavailability.
func (s *Shard) Search(ctx context.Context, q engine.Query) (*engine.Result, error) {
	if !s.br.allow() {
		s.breakerOpen.Add(1)
		return nil, fmt.Errorf("%w: circuit breaker open for %s", ErrUnavailable, s.base)
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		start := time.Now()
		res, err := s.hedgedDo(ctx, q)
		if err == nil {
			s.br.success()
			s.lat.record(time.Since(start))
			return res, nil
		}
		if !errors.Is(err, ErrUnavailable) {
			// The shard answered (bad query, overload) or the caller
			// gave up — either way the path to the shard works, so the
			// breaker resets unless the parent context died.
			if ctx.Err() == nil {
				s.br.success()
			}
			return nil, err
		}
		lastErr = err
		if attempt >= s.cfg.Retries {
			break
		}
		if err := s.backoff(ctx, attempt); err != nil {
			break
		}
		s.retried.Add(1)
	}
	s.br.failure()
	return nil, lastErr
}

// backoff sleeps the jittered exponential delay before retry number
// attempt+1, or returns early when the query context dies first.
func (s *Shard) backoff(ctx context.Context, attempt int) error {
	d := s.cfg.Backoff << uint(attempt)
	// ±50% jitter decorrelates retry storms across a fleet.
	d = d/2 + time.Duration(rand.Int63n(int64(d)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// hedgedDo runs one logical attempt, launching a duplicate request if
// the first outlives the hedging trigger. First success wins; a
// permanent failure from either wins immediately (waiting for the
// twin cannot change a 400).
func (s *Shard) hedgedDo(ctx context.Context, q engine.Query) (*engine.Result, error) {
	hedge := s.hedgeDelay()
	if hedge <= 0 {
		return s.once(ctx, q)
	}
	type outcome struct {
		res *engine.Result
		err error
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make(chan outcome, 2)
	launch := func() {
		go func() {
			r, err := s.once(actx, q)
			out <- outcome{r, err}
		}()
	}
	launch()
	outstanding := 1
	timer := time.NewTimer(hedge)
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case <-timer.C:
			if outstanding == 1 {
				s.hedged.Add(1)
				launch()
				outstanding++
			}
		case o := <-out:
			if o.err == nil {
				return o.res, nil
			}
			if !errors.Is(o.err, ErrUnavailable) {
				return nil, o.err
			}
			if firstErr == nil {
				firstErr = o.err
			}
			outstanding--
			if outstanding == 0 {
				return nil, firstErr
			}
		}
	}
}

// hedgeDelay picks the hedging trigger: the observed p90 latency once
// enough samples exist, the configured static delay before that, 0
// when hedging is disabled.
func (s *Shard) hedgeDelay() time.Duration {
	if s.cfg.HedgeAfter <= 0 {
		return 0
	}
	if p90, ok := s.lat.p90(); ok {
		if p90 < time.Millisecond {
			p90 = time.Millisecond
		}
		return p90
	}
	return s.cfg.HedgeAfter
}

// once is a single wire attempt: carve the deadline budget, encode
// (fresh floor snapshot each attempt — the fleet floor may have risen
// since the last one), POST, classify the outcome, validate the body.
func (s *Shard) once(ctx context.Context, q engine.Query) (*engine.Result, error) {
	budget := s.cfg.Timeout
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl)
		if rem <= 0 {
			return nil, ctx.Err()
		}
		if rem < budget {
			budget = rem
		}
	}
	wq, err := EncodeQuery(q, budget)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(wq)
	if err != nil {
		return nil, err
	}
	actx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, s.base+"/shardquery", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.cfg.Client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The caller's context died; not the shard's fault.
			return nil, ctx.Err()
		}
		if actx.Err() != nil {
			s.timeouts.Add(1)
			return nil, fmt.Errorf("%w: attempt deadline (%v) exceeded: %v", ErrUnavailable, budget, err)
		}
		return nil, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
	case resp.StatusCode == http.StatusTooManyRequests:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
		return nil, fmt.Errorf("shard %s: %w", s.base, engine.ErrOverloaded)
	case resp.StatusCode >= 500:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
		return nil, fmt.Errorf("%w: shard answered %d", ErrUnavailable, resp.StatusCode)
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return nil, fmt.Errorf("remote: shard rejected query (%d): %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, MaxResultBytes+1))
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if actx.Err() != nil {
			s.timeouts.Add(1)
		}
		return nil, fmt.Errorf("%w: reading response: %v", ErrUnavailable, err)
	}
	if len(raw) > MaxResultBytes {
		return nil, fmt.Errorf("%w: response exceeds %d bytes", ErrUnavailable, MaxResultBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var wr WireResult
	if err := dec.Decode(&wr); err != nil {
		// Truncated or mangled bytes — indistinguishable from a torn
		// stream, so it is the retryable class.
		return nil, fmt.Errorf("%w: corrupt response: %v", ErrUnavailable, err)
	}
	if err := wr.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	return wr.ToResult(), nil
}

// SwapIndex ships a new index partition to the shard process. The
// transfer gets a generous deadline — index bytes dwarf query bytes —
// and is not retried: the coordinator's roll machinery records the
// failure and aborts the roll instead.
func (s *Shard) SwapIndex(idx *index.Compact) error {
	timeout := 10 * s.cfg.Timeout
	if timeout < 10*time.Second {
		timeout = 10 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.base+"/swapindex", bytes.NewReader(idx.Marshal()))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := s.cfg.Client.Do(req)
	if err != nil {
		return fmt.Errorf("remote: swap to %s: %w", s.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return fmt.Errorf("remote: swap to %s answered %d: %s", s.base, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return nil
}

// Stats merges the shard process's own counters (best effort — an
// unreachable shard contributes zeros) with this client's transport
// counters, so a coordinator rollup sees both sides of the wire.
func (s *Shard) Stats() engine.Stats {
	var st engine.Stats
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+"/shardstats", nil)
	if err == nil {
		if resp, err := s.cfg.Client.Do(req); err == nil {
			if resp.StatusCode == http.StatusOK {
				json.NewDecoder(io.LimitReader(resp.Body, MaxResultBytes)).Decode(&st)
			}
			resp.Body.Close()
		}
	}
	st.Hedged += s.hedged.Load()
	st.Retried += s.retried.Load()
	st.ShardTimeouts += s.timeouts.Load()
	st.BreakerOpen += s.breakerOpen.Load()
	return st
}

// Health polls the shard process's /healthz. An unreachable or
// unparsable shard is not ready, with the reason in Err.
func (s *Shard) Health() engine.Health {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+"/healthz", nil)
	if err != nil {
		return engine.Health{Err: err.Error()}
	}
	resp, err := s.cfg.Client.Do(req)
	if err != nil {
		return engine.Health{Err: err.Error()}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return engine.Health{Err: fmt.Sprintf("healthz answered %d", resp.StatusCode)}
	}
	var h engine.Health
	if err := json.NewDecoder(io.LimitReader(resp.Body, MaxQueryBytes)).Decode(&h); err != nil {
		return engine.Health{Err: "corrupt healthz body: " + err.Error()}
	}
	return h
}

// NewFleet composes a coordinator over remote shard processes at the
// given addresses — the one-call path from a list of "host:port"
// strings to an engine.Searcher. cfg carries the coordinator knobs
// (Quorum, roll gating); scfg tunes every shard client identically.
func NewFleet(addrs []string, scfg ShardConfig, cfg shard.Config) (*shard.Coordinator, error) {
	if len(addrs) == 0 {
		return nil, errors.New("remote: no shard addresses")
	}
	children := make([]shard.Child, len(addrs))
	for i, a := range addrs {
		children[i] = NewShard(a, scfg)
	}
	return shard.NewFromChildren(children, cfg)
}

// breaker is a consecutive-failure circuit breaker with a half-open
// probe: after threshold consecutive failed searches it fails fast
// for cooldown, then admits one probe; the probe's success resets it,
// its failure re-opens it.
type breaker struct {
	mu        sync.Mutex
	threshold int // 0 = disabled
	cooldown  time.Duration
	fails     int
	openUntil time.Time
}

func (b *breaker) allow() bool {
	if b.threshold == 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fails < b.threshold {
		return true
	}
	now := time.Now()
	if now.Before(b.openUntil) {
		return false
	}
	// Half-open: this caller becomes the probe; pushing openUntil
	// forward keeps concurrent callers failing fast until the probe
	// resolves.
	b.openUntil = now.Add(b.cooldown)
	return true
}

func (b *breaker) success() {
	if b.threshold == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.openUntil = time.Time{}
}

func (b *breaker) failure() {
	if b.threshold == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.fails >= b.threshold {
		b.openUntil = time.Now().Add(b.cooldown)
	}
}

// latRing is a fixed ring of recent attempt latencies feeding the
// hedge trigger's p90.
type latRing struct {
	mu      sync.Mutex
	samples [64]time.Duration
	n       int
}

func (l *latRing) record(d time.Duration) {
	l.mu.Lock()
	l.samples[l.n%len(l.samples)] = d
	l.n++
	l.mu.Unlock()
}

// p90 reports the 90th-percentile recorded latency once at least 16
// samples exist.
func (l *latRing) p90() (time.Duration, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n < 16 {
		return 0, false
	}
	k := l.n
	if k > len(l.samples) {
		k = len(l.samples)
	}
	buf := make([]time.Duration, k)
	copy(buf, l.samples[:k])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf[(k*9)/10], true
}
