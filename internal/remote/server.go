package remote

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"bestjoin/internal/engine"
	"bestjoin/internal/faultinject"
	"bestjoin/internal/index"
)

// ServerConfig bounds a shard server's request surface.
type ServerConfig struct {
	// MaxQueryBytes caps a /shardquery body; ≤ 0 means MaxQueryBytes.
	MaxQueryBytes int64
	// MaxIndexBytes caps a /swapindex body; ≤ 0 means 256 MiB.
	MaxIndexBytes int64
}

// Server exposes one engine.Searcher as a shard process's HTTP API:
// POST /shardquery (one wire query in, one wire result out), POST
// /swapindex (a marshaled compact index in, hot-swapped), GET
// /shardstats, and GET /healthz. Any Searcher serves — a single
// engine is the normal shard process, but a coordinator works too
// (tiered fleets).
type Server struct {
	s          engine.Searcher
	queryBytes int64
	indexBytes int64
}

// NewServer wraps a searcher for serving.
func NewServer(s engine.Searcher, cfg ServerConfig) *Server {
	qb := cfg.MaxQueryBytes
	if qb <= 0 {
		qb = MaxQueryBytes
	}
	ib := cfg.MaxIndexBytes
	if ib <= 0 {
		ib = 256 << 20
	}
	return &Server{s: s, queryBytes: qb, indexBytes: ib}
}

// Register mounts all four routes on a mux.
func (sv *Server) Register(mux *http.ServeMux) {
	sv.RegisterShardOnly(mux)
	mux.HandleFunc("/healthz", sv.HandleHealthz)
}

// RegisterShardOnly mounts the shard API without /healthz, for hosts
// that already serve a compatible /healthz of their own (proxserve's
// endpoint encodes the same engine.Health shape with the same 200/503
// mapping, which is all the client-side Shard.Health expects).
func (sv *Server) RegisterShardOnly(mux *http.ServeMux) {
	mux.HandleFunc("/shardquery", sv.handleQuery)
	mux.HandleFunc("/swapindex", sv.handleSwap)
	mux.HandleFunc("/shardstats", sv.handleStats)
}

// handleQuery serves one wire query. The four network fault sites
// fire here under the faultinject build tag, simulating — in wire
// order — a congested network (latency before handling), a dropped
// connection (abort without a response), a crashing handler (HTTP
// 500), and a torn write (truncated response bytes).
func (sv *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	faultinject.MaybeSleep(faultinject.NetLatency)
	if faultinject.Fires(faultinject.NetDrop) {
		// http.ErrAbortHandler aborts the connection without writing a
		// response — the client sees a torn stream, not a status.
		panic(http.ErrAbortHandler)
	}
	if faultinject.Fires(faultinject.NetStatus) {
		http.Error(w, "injected fault", http.StatusInternalServerError)
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, sv.queryBytes))
	dec.DisallowUnknownFields()
	var wq WireQuery
	if err := dec.Decode(&wq); err != nil {
		http.Error(w, "bad query: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := wq.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q, err := wq.ToQuery()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	if b := wq.Budget(); b > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, b)
		defer cancel()
	}
	res, err := sv.s.Search(ctx, q)
	if err != nil {
		if errors.Is(err, engine.ErrOverloaded) {
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	body, err := json.Marshal(EncodeResult(res, sv.s.Health().Epoch))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if faultinject.Fires(faultinject.NetCorrupt) {
		body = body[:len(body)/2]
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// handleSwap hot-reloads the shard onto a new index partition shipped
// in the request body (index.Compact.Marshal bytes). LoadCompact
// validates eagerly, so corrupt bytes answer 400 and never reach the
// serving engine.
func (sv *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, sv.indexBytes))
	if err != nil {
		http.Error(w, "read index: "+err.Error(), http.StatusBadRequest)
		return
	}
	idx, err := index.LoadCompact(body)
	if err != nil {
		http.Error(w, "load index: "+err.Error(), http.StatusBadRequest)
		return
	}
	sv.s.SwapIndex(idx)
	w.WriteHeader(http.StatusNoContent)
}

// handleStats serves the searcher's Stats snapshot as JSON.
func (sv *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(sv.s.Stats())
}

// HandleHealthz serves the searcher's Health as JSON, 503 when not
// ready — the shape health-gated rolls and load balancers poll.
func (sv *Server) HandleHealthz(w http.ResponseWriter, r *http.Request) {
	h := sv.s.Health()
	w.Header().Set("Content-Type", "application/json")
	if !h.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(h)
}
