// Package remote puts the shard tier across process boundaries: a
// Shard is an HTTP client implementing shard.Child against a shard
// process, and a Server exposes an engine.Searcher as that process.
// A shard.Coordinator composes unchanged over remote children, so the
// scatter-gather, rank-merge, and quorum semantics are exactly the
// in-process tier's — only the transport differs.
//
// # Wire format
//
// Queries and results cross the wire as JSON (one POST per shard
// query). JSON round-trips float64 exactly — Go emits the shortest
// decimal that parses back to the identical bits — which is what
// keeps a healthy remote fleet's merged answer bitwise identical to
// the in-process coordinator's. Two lossy spots are handled
// explicitly: the kernel factory (a closure) travels as its
// engine.KernelSpec and is rebuilt identically on the serving side,
// and the pruning floor (±Inf is unrepresentable in JSON) travels as
// an optional finite snapshot, omitted while the floor still sits at
// -Inf. The floor is a performance channel only — pruning is
// strictly-below and lossless — so the remote tier's weaker floor
// sharing (a snapshot at send time rather than a live shared
// maximum) never changes any score or rank.
//
// Both directions decode defensively, PR 1 style: body-size caps,
// DisallowUnknownFields, bounds on every count and length, and
// finiteness checks on every float. A response that fails validation
// is treated exactly like a torn TCP stream: the attempt is
// retryable, never trusted.
package remote

import (
	"errors"
	"fmt"
	"math"
	"time"

	"bestjoin/internal/engine"
	"bestjoin/internal/index"
	"bestjoin/internal/match"
)

// Wire limits. Queries are small (concepts and knobs); results carry
// up to K documents with matchsets, so their cap is wider. Hostile
// peers are assumed: every limit is enforced on decode.
const (
	// MaxQueryBytes caps a /shardquery request body.
	MaxQueryBytes = 1 << 20
	// MaxResultBytes caps a /shardquery response body.
	MaxResultBytes = 32 << 20
	// maxConcepts caps the number of concepts in one wire query.
	maxConcepts = 256
	// maxTermLen caps one concept term's byte length.
	maxTermLen = 1 << 10
	// maxTermsPerConcept caps one concept's expansion size.
	maxTermsPerConcept = 1 << 12
	// maxK caps the requested result size.
	maxK = 1 << 16
	// maxBudget caps the query's deadline budget.
	maxBudget = time.Hour
	// maxWireDocs caps the document rows in one wire result.
	maxWireDocs = maxK
	// maxWireMatches caps one document's matchset length.
	maxWireMatches = 1 << 16
	// maxWireCount caps each of the result's candidate-accounting
	// counters; a count beyond it is corruption, not scale.
	maxWireCount = 1 << 40
)

// WireQuery is engine.Query flattened for transport. The kernel
// travels as its spec; the floor as an optional finite snapshot.
type WireQuery struct {
	Concepts []index.Concept `json:"concepts"`
	Family   string          `json:"family"`
	Alpha    float64         `json:"alpha"`
	Valid    bool            `json:"valid,omitempty"`
	K        int             `json:"k,omitempty"`
	// Mode is "" (engine default), "and", or "or".
	Mode     string `json:"mode,omitempty"`
	MinMatch int    `json:"min_match,omitempty"`
	// Floor is the coordinator's pruning-floor snapshot at send time;
	// omitted while the floor is still -Inf (JSON cannot carry ±Inf).
	Floor *float64 `json:"floor,omitempty"`
	// BudgetMS is the per-shard deadline budget in milliseconds — the
	// slice of the coordinator query's remaining deadline carved out
	// for this attempt. 0 means no budget.
	BudgetMS int64 `json:"budget_ms,omitempty"`
}

// WireMatch is one match in a document's best matchset.
type WireMatch struct {
	Loc   int     `json:"loc"`
	Score float64 `json:"score"`
}

// WireDoc is one ranked document row.
type WireDoc struct {
	Doc   int         `json:"doc"`
	Score float64     `json:"score"`
	Set   []WireMatch `json:"set,omitempty"`
}

// WireResult is engine.Result flattened for transport, plus the
// serving shard's index epoch (observability: a coordinator can see
// which generation answered).
type WireResult struct {
	Docs       []WireDoc `json:"docs"`
	Partial    bool      `json:"partial,omitempty"`
	Degraded   bool      `json:"degraded,omitempty"`
	Candidates int       `json:"candidates"`
	Evaluated  int       `json:"evaluated"`
	Pruned     int       `json:"pruned"`
	Failed     int       `json:"failed"`
	Epoch      uint64    `json:"epoch"`
}

func finite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// EncodeQuery flattens an engine.Query for the wire. The query must
// carry a KernelSpec — the Join closure cannot cross a process
// boundary — and the floor, if shared, is snapshotted at call time.
func EncodeQuery(q engine.Query, budget time.Duration) (WireQuery, error) {
	if q.Spec.Zero() {
		return WireQuery{}, errors.New("remote: query has no kernel spec (Join closures cannot cross the wire)")
	}
	wq := WireQuery{
		Concepts: q.Concepts,
		Family:   q.Spec.Family,
		Alpha:    q.Spec.Alpha,
		Valid:    q.Spec.Valid,
		K:        q.K,
		MinMatch: q.MinMatch,
	}
	switch q.Mode {
	case engine.ModeDefault:
	case engine.ModeAND:
		wq.Mode = "and"
	case engine.ModeOR:
		wq.Mode = "or"
	default:
		return WireQuery{}, fmt.Errorf("remote: unknown query mode %d", q.Mode)
	}
	if q.Floor != nil {
		if f := q.Floor.Load(); finite(f) {
			wq.Floor = &f
		}
	}
	if budget > 0 {
		wq.BudgetMS = budget.Milliseconds()
		if wq.BudgetMS == 0 {
			wq.BudgetMS = 1 // sub-millisecond budgets still bound the shard
		}
	}
	return wq, nil
}

// Validate bounds-checks a decoded wire query; hostile peers are
// assumed, so everything a shard would otherwise trust is checked
// here. Kernel-spec validity (family, alpha finiteness) is checked by
// KernelSpec.Factory at resolution time.
func (wq *WireQuery) Validate() error {
	if len(wq.Concepts) == 0 {
		return errors.New("remote: query has no concepts")
	}
	if len(wq.Concepts) > maxConcepts {
		return fmt.Errorf("remote: %d concepts exceeds limit %d", len(wq.Concepts), maxConcepts)
	}
	for i, c := range wq.Concepts {
		if len(c) == 0 {
			return fmt.Errorf("remote: concept %d is empty", i)
		}
		if len(c) > maxTermsPerConcept {
			return fmt.Errorf("remote: concept %d has %d terms, exceeds limit %d", i, len(c), maxTermsPerConcept)
		}
		for term, w := range c {
			if term == "" || len(term) > maxTermLen {
				return fmt.Errorf("remote: concept %d has a term of length %d (limit %d, empty forbidden)", i, len(term), maxTermLen)
			}
			if !finite(w) {
				return fmt.Errorf("remote: concept %d term %q has non-finite weight", i, term)
			}
		}
	}
	if wq.K < 0 || wq.K > maxK {
		return fmt.Errorf("remote: k %d out of range [0, %d]", wq.K, maxK)
	}
	switch wq.Mode {
	case "", "and", "or":
	default:
		return fmt.Errorf("remote: unknown mode %q (want \"\", \"and\", or \"or\")", wq.Mode)
	}
	if wq.MinMatch < 0 || wq.MinMatch > len(wq.Concepts) {
		return fmt.Errorf("remote: min_match %d out of range [0, %d]", wq.MinMatch, len(wq.Concepts))
	}
	if wq.Floor != nil && !finite(*wq.Floor) {
		return errors.New("remote: non-finite floor")
	}
	if wq.BudgetMS < 0 || wq.BudgetMS > maxBudget.Milliseconds() {
		return fmt.Errorf("remote: budget %dms out of range [0, %d]", wq.BudgetMS, maxBudget.Milliseconds())
	}
	return nil
}

// ToQuery rebuilds the engine.Query a validated wire query describes.
// The kernel resolves from the spec (engine.Search resolves it again
// identically — Factory is deterministic — but resolving here surfaces
// a bad spec as a 400 instead of a shard-side search error), and the
// floor snapshot seeds a fresh local floor.
func (wq *WireQuery) ToQuery() (engine.Query, error) {
	spec := engine.KernelSpec{Family: wq.Family, Alpha: wq.Alpha, Valid: wq.Valid}
	if _, err := spec.Factory(); err != nil {
		return engine.Query{}, err
	}
	q := engine.Query{
		Concepts: wq.Concepts,
		Spec:     spec,
		K:        wq.K,
		MinMatch: wq.MinMatch,
	}
	switch wq.Mode {
	case "and":
		q.Mode = engine.ModeAND
	case "or":
		q.Mode = engine.ModeOR
	}
	if wq.Floor != nil {
		q.Floor = engine.NewGlobalFloor()
		q.Floor.Raise(*wq.Floor)
	}
	return q, nil
}

// Budget returns the wire query's deadline budget (0 = none).
func (wq *WireQuery) Budget() time.Duration {
	return time.Duration(wq.BudgetMS) * time.Millisecond
}

// EncodeResult flattens an engine.Result for the wire, stamping the
// serving epoch.
func EncodeResult(r *engine.Result, epoch uint64) WireResult {
	wr := WireResult{
		Docs:       make([]WireDoc, len(r.Docs)),
		Partial:    r.Partial,
		Degraded:   r.Degraded,
		Candidates: r.Candidates,
		Evaluated:  r.Evaluated,
		Pruned:     r.Pruned,
		Failed:     r.Failed,
		Epoch:      epoch,
	}
	for i, d := range r.Docs {
		wd := WireDoc{Doc: d.Doc, Score: d.Score}
		if len(d.Set) > 0 {
			wd.Set = make([]WireMatch, len(d.Set))
			for j, m := range d.Set {
				wd.Set[j] = WireMatch{Loc: m.Loc, Score: m.Score}
			}
		}
		wr.Docs[i] = wd
	}
	return wr
}

// Validate bounds-checks a decoded wire result. The client calls it
// on every response: a shard answer that violates the engine's result
// invariants — unsorted rows, non-finite scores, absurd counts — is
// corruption (a torn write, a middlebox, a buggy peer) and must be
// retried elsewhere, never merged.
func (wr *WireResult) Validate() error {
	if len(wr.Docs) > maxWireDocs {
		return fmt.Errorf("remote: result carries %d docs, exceeds limit %d", len(wr.Docs), maxWireDocs)
	}
	for i, d := range wr.Docs {
		if d.Doc < 0 {
			return fmt.Errorf("remote: result doc %d has negative id %d", i, d.Doc)
		}
		if !finite(d.Score) {
			return fmt.Errorf("remote: result doc %d has non-finite score", i)
		}
		if len(d.Set) > maxWireMatches {
			return fmt.Errorf("remote: result doc %d matchset has %d entries, exceeds limit %d", i, len(d.Set), maxWireMatches)
		}
		for j, m := range d.Set {
			if m.Loc < 0 {
				return fmt.Errorf("remote: result doc %d match %d has negative location", i, j)
			}
			if !finite(m.Score) {
				return fmt.Errorf("remote: result doc %d match %d has non-finite score", i, j)
			}
		}
		if i > 0 {
			prev := wr.Docs[i-1]
			if d.Score > prev.Score || (d.Score == prev.Score && d.Doc <= prev.Doc) {
				return fmt.Errorf("remote: result docs out of rank order at row %d", i)
			}
		}
	}
	for _, n := range [...]int{wr.Candidates, wr.Evaluated, wr.Pruned, wr.Failed} {
		if n < 0 || n > maxWireCount {
			return fmt.Errorf("remote: result count %d out of range [0, %d]", n, maxWireCount)
		}
	}
	return nil
}

// ToResult rebuilds the engine.Result a validated wire result
// describes.
func (wr *WireResult) ToResult() *engine.Result {
	r := &engine.Result{
		Docs:       make([]engine.DocResult, len(wr.Docs)),
		Partial:    wr.Partial,
		Degraded:   wr.Degraded,
		Candidates: wr.Candidates,
		Evaluated:  wr.Evaluated,
		Pruned:     wr.Pruned,
		Failed:     wr.Failed,
	}
	for i, d := range wr.Docs {
		dr := engine.DocResult{Doc: d.Doc, Score: d.Score}
		if len(d.Set) > 0 {
			dr.Set = make(match.Set, len(d.Set))
			for j, m := range d.Set {
				dr.Set[j] = match.Match{Loc: m.Loc, Score: m.Score}
			}
		}
		r.Docs[i] = dr
	}
	return r
}
