//go:build faultinject

package remote

// Chaos harness for the networked shard tier, compiled only with
// -tags faultinject (`make chaos` runs it under -race). The injected
// faults are the network's own failure modes — latency spikes, torn
// connections, 500s from a dying handler, truncated response bytes —
// fired inside the shard server by deterministic seeded plans. The
// contract under fire: a quorum fleet's non-degraded answer is
// bitwise identical to the fault-free baseline, a degraded answer is
// a sound subset of the healthy full ranking, retries and timeouts
// are counted, and once injection stops the fleet answers bitwise
// healthy again. Hard query errors are tolerated only as a rare
// residue of every replica of an attempt failing at once.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"bestjoin/internal/engine"
	"bestjoin/internal/faultinject"
	"bestjoin/internal/shard"
)

func TestRemoteChaosNetworkFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	docs := remoteCorpus(rng)
	compact := buildCompact(t, docs)
	healthy := engine.New(compact, engine.Config{Workers: 2})
	spec := engine.KernelSpec{Family: "med", Alpha: 0.05, Valid: true}
	q := engine.Query{
		Concepts: remoteConcepts(rng),
		Spec:     spec,
		K:        8,
	}
	baseline, err := healthy.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	fullQ := q
	fullQ.K = compact.Docs()
	full, err := healthy.Search(context.Background(), fullQ)
	if err != nil {
		t.Fatal(err)
	}

	addrs := startFleet(t, compact, 2, engine.Config{Workers: 2})

	cases := []struct {
		name         string
		rates        map[faultinject.Site]float64
		latency      time.Duration
		timeout      time.Duration
		hedgeAfter   time.Duration
		wantTimeouts bool
		wantHedges   bool
	}{
		{
			name:    "latency",
			rates:   map[faultinject.Site]float64{faultinject.NetLatency: 0.3},
			latency: 150 * time.Millisecond, timeout: 40 * time.Millisecond,
			hedgeAfter: 10 * time.Millisecond, wantTimeouts: true, wantHedges: true,
		},
		{
			name:  "conn-drop",
			rates: map[faultinject.Site]float64{faultinject.NetDrop: 0.3},
			timeout: time.Second, hedgeAfter: -1,
		},
		{
			name:  "http-500",
			rates: map[faultinject.Site]float64{faultinject.NetStatus: 0.3},
			timeout: time.Second, hedgeAfter: -1,
		},
		{
			name:  "corrupt-bytes",
			rates: map[faultinject.Site]float64{faultinject.NetCorrupt: 0.3},
			timeout: time.Second, hedgeAfter: -1,
		},
		{
			name: "mixed",
			rates: map[faultinject.Site]float64{
				faultinject.NetLatency: 0.1, faultinject.NetDrop: 0.1,
				faultinject.NetStatus: 0.1, faultinject.NetCorrupt: 0.1,
			},
			latency: 150 * time.Millisecond, timeout: 40 * time.Millisecond,
			hedgeAfter: 10 * time.Millisecond,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Breaker off: seeded bursts would otherwise open it and turn
			// transient faults into minutes of synthetic unavailability,
			// which is the breaker test's subject, not chaos soundness.
			fleet, err := NewFleet(addrs, ShardConfig{
				Timeout: tc.timeout, Backoff: time.Millisecond, Retries: 3,
				HedgeAfter: tc.hedgeAfter, BreakerThreshold: -1,
			}, shard.Config{Quorum: 1})
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(1); seed <= 3; seed++ {
				faultinject.Activate(faultinject.Config{
					Seed: seed, Rates: tc.rates, Latency: tc.latency,
				})
				const rounds = 10
				hardErrs := 0
				for round := 0; round < rounds; round++ {
					res, err := fleet.Search(context.Background(), q)
					if err != nil {
						// Every replica of every shard attempt failed at once —
						// allowed to happen, but only rarely.
						hardErrs++
						continue
					}
					if res.Degraded || res.Partial {
						assertRemoteChaosSubset(t, fmt.Sprintf("%s seed %d round %d", tc.name, seed, round),
							res.Docs, full.Docs)
					} else if !sameDocs(res.Docs, baseline.Docs) {
						t.Fatalf("%s seed %d round %d: non-degraded answer differs from baseline:\ngot  %+v\nwant %+v",
							tc.name, seed, round, res.Docs, baseline.Docs)
					}
				}
				if hardErrs > rounds/2 {
					t.Fatalf("%s seed %d: %d/%d queries failed outright — retries not absorbing faults",
						tc.name, seed, hardErrs, rounds)
				}
				faultinject.Deactivate()
			}

			// Injection off: the same fleet must answer bitwise healthy.
			res, err := fleet.Search(context.Background(), q)
			if err != nil || res.Degraded {
				t.Fatalf("fleet unhealthy after chaos: %v %+v", err, res)
			}
			if !sameDocs(res.Docs, baseline.Docs) {
				t.Fatalf("post-chaos answer differs from baseline: %+v", res.Docs)
			}

			st := fleet.Stats()
			if st.Retried == 0 {
				t.Fatalf("%s: no retries counted despite injected faults; Stats %+v", tc.name, st)
			}
			if tc.wantTimeouts && st.ShardTimeouts == 0 {
				t.Fatalf("%s: no shard timeouts counted despite injected latency", tc.name)
			}
			if tc.wantHedges && st.Hedged == 0 {
				t.Fatalf("%s: no hedges counted despite injected latency", tc.name)
			}
		})
	}
}

func sameDocs(a, b []engine.DocResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Doc != b[i].Doc || a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}

// assertRemoteChaosSubset holds a degraded or partial answer to the
// soundness contract: every returned document carries its exact
// healthy score and matchset, in rank order — faults may shrink the
// answer, never corrupt it.
func assertRemoteChaosSubset(t *testing.T, label string, got, full []engine.DocResult) {
	t.Helper()
	for i, d := range got {
		found := false
		for _, w := range full {
			if w.Doc != d.Doc {
				continue
			}
			if w.Score != d.Score || len(w.Set) != len(d.Set) {
				t.Fatalf("%s: degraded doc %d mis-scored: got %v/%v, healthy %v/%v",
					label, d.Doc, d.Score, d.Set, w.Score, w.Set)
			}
			for j := range d.Set {
				if d.Set[j] != w.Set[j] {
					t.Fatalf("%s: degraded doc %d matchset %v, healthy %v", label, d.Doc, d.Set, w.Set)
				}
			}
			found = true
			break
		}
		if !found {
			t.Fatalf("%s: degraded doc %d score %v not in healthy ranking", label, d.Doc, d.Score)
		}
		if i > 0 {
			prev := got[i-1]
			if d.Score > prev.Score || (d.Score == prev.Score && d.Doc < prev.Doc) {
				t.Fatalf("%s: degraded merge out of rank order at %d: %+v", label, i, got)
			}
		}
	}
}
