// Package envelope implements the dominating-match machinery shared by
// the MED and MAX join algorithms (Sections IV and V of the paper):
//
//   - the linear-time stack precomputation of the dominating match
//     function U_j (Algorithm 2's PrecomputeDomMatchFunc), valid for
//     any at-most-one-crossing contribution function;
//   - a cursor that serves "dominating match at location l" queries in
//     amortized constant time for non-decreasing l;
//   - the explicit interval-match-pair representation of U_j used by
//     the paper's general (non-specialized) MAX approach, together
//     with the argmax of the summed contribution upper envelopes
//     (Lemma 2).
//
// A contribution function c(m,l) gives the distance-decayed score
// contribution of match m at reference location l (Definitions 5/7).
// A match m dominates m' at l when c(m,l) ≥ c(m',l) (Definition 6).
package envelope

import (
	"math"

	"bestjoin/internal/match"
)

// Contribution computes the distance-decayed score contribution of a
// match at a reference location. For MED it is g(score)−|loc−l|; for
// MAX it is g(score, |loc−l|).
type Contribution func(m match.Match, l int) float64

// Entry is one element of a precomputed dominating-match list: the
// match plus its position in the original match list. The position
// lets the MED algorithm order same-location matches consistently with
// the global processing order (the paper's footnote 3 requires picking
// dominating matches that succeed the current match consistently).
type Entry struct {
	M   match.Match
	Pos int
}

// Precompute builds the dominating match list V for one match list
// under contribution c, by a single left-to-right pass with a stack
// (Algorithm 2, PrecomputeDomMatchFunc). Each match is pushed and
// popped at most once, so the cost is O(|list|).
//
// The result is ordered by location and contains, bottom to top, one
// match per local maximum of the contribution upper envelope (plus
// tie-breaking dominating matches; ties are broken in favour of the
// match that comes last in the list, per the paper's footnote 4).
//
// The contract requires c to be at-most-one-crossing (Definition 8);
// MED tent contributions and the paper's exponential-decay MAX
// contributions both qualify (Lemma 3).
func Precompute(list match.List, c Contribution) []Entry {
	return PrecomputeInto(make([]Entry, 0, len(list)), list, c)
}

// PrecomputeInto is Precompute writing into a caller-provided slice:
// the stack grows by appending to dst (pass a previous result resliced
// to dst[:0] to reuse its backing array), so steady-state callers —
// the MED/MAX join kernels precomputing per-term dominating lists for
// one document after another — allocate nothing.
func PrecomputeInto(dst []Entry, list match.List, c Contribution) []Entry {
	stack := dst
	for pos, m := range list {
		// Skip m if it does not dominate the top of the stack at its
		// own location: by at-most-one-crossing it is then dominated
		// everywhere.
		if len(stack) > 0 && c(m, m.Loc) < c(stack[len(stack)-1].M, m.Loc) {
			continue
		}
		// Pop any match dominated by m at that match's own location:
		// it is then dominated everywhere. The ≥ comparison makes m
		// (the later match) win ties.
		for len(stack) > 0 {
			top := stack[len(stack)-1].M
			if c(m, top.Loc) >= c(top, top.Loc) {
				stack = stack[:len(stack)-1]
				continue
			}
			break
		}
		stack = append(stack, Entry{M: m, Pos: pos})
	}
	return stack
}

// Matches strips the positions off a precomputed dominating-match
// list, yielding a location-sorted match.List (useful for merging the
// V_j's with match.Merge, as the MAX algorithm does).
func Matches(v []Entry) match.List {
	return MatchesInto(make(match.List, 0, len(v)), v)
}

// MatchesInto is Matches appending into a caller-provided slice
// (reset to length zero first), for callers reusing buffers across
// documents.
func MatchesInto(dst match.List, v []Entry) match.List {
	dst = dst[:0]
	for _, e := range v {
		dst = append(dst, e.M)
	}
	return dst
}

// Cursor serves dominating-match queries against a precomputed list V
// for a sequence of non-decreasing query locations, mirroring how the
// main loops of the MED and MAX algorithms scan the V_j's in parallel
// with the match lists. Each query advances the cursor and compares
// the contributions of at most two matches in V located closest to the
// query location (one left of the boundary, one right).
//
// A cursor offers two query styles that must not be mixed on one
// instance: At takes bare locations (queries non-decreasing in
// location; used by MAX), AtEvent takes merge events (queries
// non-decreasing in processing order; used by MED, where the
// left/right boundary must split same-location matches by processing
// order).
type Cursor struct {
	v    []Entry
	c    Contribution
	term int // query-term index of the underlying list
	next int // index of first element right of the current boundary
}

// NewCursor returns a cursor over term's precomputed dominating-match
// list.
func NewCursor(term int, v []Entry, c Contribution) *Cursor {
	return &Cursor{v: v, c: c, term: term}
}

// Reset rebinds the cursor to a (possibly different) precomputed list
// and rewinds it, so one Cursor value can serve a stream of instances
// without reallocation. The two query styles still must not be mixed
// between one Reset and the next.
func (cu *Cursor) Reset(term int, v []Entry, c Contribution) {
	cu.v, cu.c, cu.term, cu.next = v, c, term, 0
}

// At returns a dominating match for location l. Query locations must
// be non-decreasing across calls. ok is false only if V is empty.
// Contribution ties between the left and right candidate go to the
// right one, i.e. the match that comes later (footnote 3).
func (cu *Cursor) At(l int) (m match.Match, ok bool) {
	for cu.next < len(cu.v) && cu.v[cu.next].M.Loc <= l {
		cu.next++
	}
	m, _, ok = cu.pick(l)
	return m, ok
}

// AtEvent returns a dominating match for the location of merge event
// ev, splitting same-location matches around ev by processing order.
// Events must be non-decreasing in processing order across calls.
// follows reports whether the returned match succeeds ev in processing
// order — the information the MED algorithm's median-rank counter
// needs. Contribution ties go to the following candidate (footnote 3).
func (cu *Cursor) AtEvent(ev match.Event) (m match.Match, follows, ok bool) {
	for cu.next < len(cu.v) && cu.precedes(cu.v[cu.next], ev) {
		cu.next++
	}
	return cu.pick(ev.M.Loc)
}

// precedes reports whether entry e comes before event ev in the global
// processing order of match.Merge: by location, then term index, then
// position within the list.
func (cu *Cursor) precedes(e Entry, ev match.Event) bool {
	if e.M.Loc != ev.M.Loc {
		return e.M.Loc < ev.M.Loc
	}
	if cu.term != ev.Term {
		return cu.term < ev.Term
	}
	return e.Pos < ev.Pos
}

// pick compares the two boundary candidates at location l; ties go to
// the right (following) candidate. fromRight reports which side the
// pick came from.
func (cu *Cursor) pick(l int) (m match.Match, fromRight, ok bool) {
	hasLeft := cu.next > 0
	hasRight := cu.next < len(cu.v)
	switch {
	case !hasLeft && !hasRight:
		return match.Match{}, false, false
	case !hasLeft:
		return cu.v[cu.next].M, true, true
	case !hasRight:
		return cu.v[cu.next-1].M, false, true
	}
	left, right := cu.v[cu.next-1].M, cu.v[cu.next].M
	if cu.c(right, l) >= cu.c(left, l) {
		return right, true, true
	}
	return left, false, true
}

// Value returns the contribution upper envelope S(l) = max over the
// list of c(m,l), via the same two-candidate comparison as At.
func (cu *Cursor) Value(l int) (float64, bool) {
	m, ok := cu.At(l)
	if !ok {
		return 0, false
	}
	return cu.c(m, l), true
}

// Interval is one interval-match pair of an explicit dominating match
// function representation: M dominates its list at every integer
// location in [Lo, Hi].
type Interval struct {
	Lo, Hi int
	M      match.Match
}

// Intervals computes the interval-match-pair representation of the
// dominating match function over the integer location range [lo, hi]
// by brute-force evaluation of all contribution curves at every
// location — the paper's general approach, whose cost is linear in the
// number of interval-match pairs, which "can be arbitrarily large (up
// to the number of all possible locations)". Complexity
// O((hi−lo+1)·|list|). Ties go to the later match in the list.
func Intervals(list match.List, c Contribution, lo, hi int) []Interval {
	if len(list) == 0 || hi < lo {
		return nil
	}
	var out []Interval
	for l := lo; l <= hi; l++ {
		m := dominatingAt(list, c, l)
		if n := len(out); n > 0 && out[n-1].M == m {
			out[n-1].Hi = l
			continue
		}
		out = append(out, Interval{Lo: l, Hi: l, M: m})
	}
	return out
}

// ArgmaxSum computes l_MAX = argmax over [lo,hi] of Σj Sj(l), the
// summed contribution upper envelopes of all lists, returning the
// maximizing location, the per-list dominating matches at it, and the
// summed contribution there. Per Lemma 2 the matchset
// {U_1(l_MAX), …, U_Q(l_MAX)} is then an overall best matchset under
// the MAX scoring function. ok is false if any list is empty or the
// range is empty.
//
// This is the general (expensive) MAX approach: it evaluates every
// envelope at every integer location, costing O((hi−lo+1)·Σ|Lj|).
func ArgmaxSum(lists match.Lists, cs []Contribution, lo, hi int) (lMax int, doms match.Set, sum float64, ok bool) {
	if !lists.Complete() || hi < lo {
		return 0, nil, 0, false
	}
	bestSum := math.Inf(-1)
	bestLoc := lo
	for l := lo; l <= hi; l++ {
		s := 0.0
		for j, list := range lists {
			s += cs[j](dominatingAt(list, cs[j], l), l)
		}
		if s > bestSum {
			bestSum, bestLoc = s, l
		}
	}
	doms = make(match.Set, len(lists))
	for j, list := range lists {
		doms[j] = dominatingAt(list, cs[j], bestLoc)
	}
	return bestLoc, doms, bestSum, true
}

// dominatingAt scans the whole list for the contribution argmax at l;
// ties go to the later match.
func dominatingAt(list match.List, c Contribution, l int) match.Match {
	best := list[0]
	bestV := c(best, l)
	for _, m := range list[1:] {
		if v := c(m, l); v >= bestV {
			best, bestV = m, v
		}
	}
	return best
}
