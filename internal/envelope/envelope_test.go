package envelope

import (
	"math"
	"math/rand"
	"testing"

	"bestjoin/internal/match"
	"bestjoin/internal/randinst"
	"bestjoin/internal/scorefn"
)

// tent is the MED-style contribution: peak score·scale at the match
// location, slopes ±1.
func tent(m match.Match, l int) float64 {
	d := m.Loc - l
	if d < 0 {
		d = -d
	}
	return 10*m.Score - float64(d)
}

// expDecay is the SumMAX-style contribution.
func expDecay(m match.Match, l int) float64 {
	d := m.Loc - l
	if d < 0 {
		d = -d
	}
	return m.Score * math.Exp(-0.1*float64(d))
}

func bruteEnvelope(list match.List, c Contribution, l int) float64 {
	best := math.Inf(-1)
	for _, m := range list {
		if v := c(m, l); v > best {
			best = v
		}
	}
	return best
}

func TestPrecomputeEmpty(t *testing.T) {
	if v := Precompute(nil, tent); len(v) != 0 {
		t.Errorf("Precompute(nil) = %v, want empty", v)
	}
}

func TestPrecomputeSingle(t *testing.T) {
	list := match.List{{Loc: 5, Score: 0.5}}
	v := Precompute(list, tent)
	if len(v) != 1 || v[0].M != list[0] || v[0].Pos != 0 {
		t.Errorf("Precompute single = %v", v)
	}
}

func TestPrecomputeDropsDominatedMatch(t *testing.T) {
	// A low-score match right next to a high-score one is dominated
	// everywhere under the tent contribution.
	list := match.List{
		{Loc: 10, Score: 1.0}, // peak 10
		{Loc: 11, Score: 0.1}, // peak 1, dominated: 10−1 ≥ 1 at loc 11
	}
	v := Precompute(list, tent)
	if len(v) != 1 || v[0].M.Loc != 10 {
		t.Errorf("Precompute = %v, want only the dominating match", v)
	}
}

func TestPrecomputePopsEarlierDominated(t *testing.T) {
	list := match.List{
		{Loc: 10, Score: 0.1}, // peak 1
		{Loc: 11, Score: 1.0}, // peak 10; dominates previous at loc 10 (10−1 ≥ 1)
	}
	v := Precompute(list, tent)
	if len(v) != 1 || v[0].M.Loc != 11 {
		t.Errorf("Precompute = %v, want only the later match", v)
	}
}

func TestPrecomputeTieGoesToLaterMatch(t *testing.T) {
	// Identical matches at the same location: the later one must win
	// (footnote 4 tie-breaking).
	list := match.List{{Loc: 5, Score: 0.5}, {Loc: 5, Score: 0.5}}
	v := Precompute(list, tent)
	if len(v) != 1 || v[0].Pos != 1 {
		t.Fatalf("Precompute = %v, want only the later of the tied matches", v)
	}
}

// checkEnvelopeAgreement verifies that cursor queries over the
// precomputed list reproduce the brute-force upper envelope at every
// location in [lo,hi].
func checkEnvelopeAgreement(t *testing.T, list match.List, c Contribution, lo, hi int) {
	t.Helper()
	v := Precompute(list, c)
	cu := NewCursor(0, v, c)
	for l := lo; l <= hi; l++ {
		got, ok := cu.Value(l)
		if !ok {
			t.Fatalf("cursor has no value at %d", l)
		}
		want := bruteEnvelope(list, c, l)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("envelope at %d: cursor %v, brute %v (V=%v)", l, got, want, v)
		}
	}
}

func TestEnvelopeMatchesBruteForceTent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(12)
		list := make(match.List, 0, n)
		for i := 0; i < n; i++ {
			list = append(list, match.Match{Loc: rng.Intn(60), Score: 1 - rng.Float64()})
		}
		list.Sort()
		checkEnvelopeAgreement(t, list, tent, -5, 65)
	}
}

func TestEnvelopeMatchesBruteForceExpDecay(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(12)
		list := make(match.List, 0, n)
		for i := 0; i < n; i++ {
			list = append(list, match.Match{Loc: rng.Intn(60), Score: 1 - rng.Float64()})
		}
		list.Sort()
		checkEnvelopeAgreement(t, list, expDecay, -5, 65)
	}
}

func TestCursorFollowsFlag(t *testing.T) {
	list := match.List{{Loc: 10, Score: 1}, {Loc: 100, Score: 1}}
	v := Precompute(list, tent)
	if len(v) != 2 {
		t.Fatalf("both separated peaks should survive, got %v", v)
	}
	// Cursor for term 1, queried with events from term 0.
	cu := NewCursor(1, v, tent)
	m, follows, ok := cu.AtEvent(match.Event{Term: 0, M: match.Match{Loc: 12}})
	if !ok || m.Loc != 10 || follows {
		t.Errorf("AtEvent(12) = %v follows=%v, want loc 10 not following", m, follows)
	}
	m, follows, ok = cu.AtEvent(match.Event{Term: 0, M: match.Match{Loc: 80}})
	if !ok || m.Loc != 100 || !follows {
		t.Errorf("AtEvent(80) = %v follows=%v, want loc 100 following", m, follows)
	}
}

func TestCursorSameLocationSplitsByProcessingOrder(t *testing.T) {
	// A dominating match at the event's own location counts as
	// following when its term index is greater than the event's, and
	// as preceding when smaller — the consistent succeed-preference
	// the MED median-rank counter relies on (footnote 3).
	list := match.List{{Loc: 10, Score: 1}}
	v := Precompute(list, tent)

	after := NewCursor(2, v, tent)
	m, follows, ok := after.AtEvent(match.Event{Term: 1, M: match.Match{Loc: 10}})
	if !ok || m.Loc != 10 || !follows {
		t.Errorf("same-loc later-term = %v follows=%v, want following", m, follows)
	}

	before := NewCursor(0, v, tent)
	m, follows, ok = before.AtEvent(match.Event{Term: 1, M: match.Match{Loc: 10}})
	if !ok || m.Loc != 10 || follows {
		t.Errorf("same-loc earlier-term = %v follows=%v, want not following", m, follows)
	}
}

func TestCursorEmpty(t *testing.T) {
	cu := NewCursor(0, nil, tent)
	if _, ok := cu.At(5); ok {
		t.Error("cursor over empty list reported ok")
	}
	if _, _, ok := cu.AtEvent(match.Event{Term: 1, M: match.Match{Loc: 5}}); ok {
		t.Error("AtEvent over empty list reported ok")
	}
}

func TestIntervalsCoverRangeAndAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		list := make(match.List, 0, n)
		for i := 0; i < n; i++ {
			list = append(list, match.Match{Loc: rng.Intn(40), Score: 1 - rng.Float64()})
		}
		list.Sort()
		lo, hi := -3, 45
		ivs := Intervals(list, tent, lo, hi)
		// Intervals must tile [lo,hi] contiguously.
		if ivs[0].Lo != lo || ivs[len(ivs)-1].Hi != hi {
			t.Fatalf("intervals do not span range: %v", ivs)
		}
		for i := 1; i < len(ivs); i++ {
			if ivs[i].Lo != ivs[i-1].Hi+1 {
				t.Fatalf("gap between intervals %v and %v", ivs[i-1], ivs[i])
			}
		}
		// Every interval's match must achieve the brute envelope.
		for _, iv := range ivs {
			for l := iv.Lo; l <= iv.Hi; l++ {
				if math.Abs(tent(iv.M, l)-bruteEnvelope(list, tent, l)) > 1e-9 {
					t.Fatalf("interval match %v not dominating at %d", iv.M, l)
				}
			}
		}
	}
}

func TestArgmaxSumMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	fn := scorefn.SumMAX{Alpha: 0.1}
	for trial := 0; trial < 100; trial++ {
		lists := randinst.Lists(rng, randinst.Config{Terms: 3, MaxPerList: 5, MaxLoc: 40, AllowTies: true})
		cs := make([]Contribution, len(lists))
		for j := range cs {
			j := j
			cs[j] = func(m match.Match, l int) float64 {
				d := m.Loc - l
				if d < 0 {
					d = -d
				}
				return fn.Contribution(j, m.Score, float64(d))
			}
		}
		lMax, doms, sum, ok := ArgmaxSum(lists, cs, 0, 40)
		if !ok {
			t.Fatal("ArgmaxSum not ok on complete lists")
		}
		// Brute: max over locations of summed per-list envelope.
		want := math.Inf(-1)
		for l := 0; l <= 40; l++ {
			s := 0.0
			for j := range lists {
				s += bruteEnvelope(lists[j], cs[j], l)
			}
			want = math.Max(want, s)
		}
		if math.Abs(sum-want) > 1e-9 {
			t.Fatalf("ArgmaxSum sum=%v want %v", sum, want)
		}
		// The returned matchset must achieve the sum at lMax.
		got := 0.0
		for j, m := range doms {
			got += cs[j](m, lMax)
		}
		if math.Abs(got-sum) > 1e-9 {
			t.Fatalf("dominating set sums to %v at %d, reported %v", got, lMax, sum)
		}
	}
}

func TestArgmaxSumIncomplete(t *testing.T) {
	lists := match.Lists{{{Loc: 1, Score: 1}}, {}}
	if _, _, _, ok := ArgmaxSum(lists, []Contribution{tent, tent}, 0, 10); ok {
		t.Error("ArgmaxSum ok with an empty list")
	}
}
