package bestjoin

import (
	"math/rand"

	"bestjoin/internal/gazetteer"
	"bestjoin/internal/lexicon"
	"bestjoin/internal/matcher"
	"bestjoin/internal/scorefn"
	"bestjoin/internal/text"
)

// Token is one word occurrence of a tokenized document.
type Token = text.Token

// Document is a tokenized document ready for matching.
type Document struct {
	Tokens []Token
}

// NewDocument tokenizes raw text (lower-cased words at sequential
// token positions).
func NewDocument(body string) Document {
	return Document{Tokens: text.Tokenize(body)}
}

// Stem returns the Porter stem of a word — the normalization every
// matcher applies before comparing words.
func Stem(word string) string { return text.Stem(word) }

// Matcher finds and scores all occurrences matching one query term.
type Matcher = matcher.Matcher

// MatchQuery runs one matcher per query term over the document and
// returns the join instance.
func (d Document) MatchQuery(matchers ...Matcher) MatchLists {
	return matcher.Compile(d.Tokens, matchers)
}

// Lexicon is a lexical graph scoring fuzzy matches by graph distance
// (1 − 0.3·d for distance d ≤ 3, the paper's WordNet rule).
type Lexicon = lexicon.Graph

// NewLexicon returns an empty lexical graph; AddEdge/AddSynonyms build
// it up.
func NewLexicon() *Lexicon { return lexicon.NewGraph() }

// BuiltinLexicon returns the embedded lexical graph covering the
// vocabulary of the paper's experiments (the WordNet substitute).
func BuiltinLexicon() *Lexicon { return lexicon.Builtin() }

// Gazetteer answers is-this-a-place lookups.
type Gazetteer = gazetteer.Gazetteer

// NewGazetteer builds a gazetteer from place names.
func NewGazetteer(places ...string) *Gazetteer { return gazetteer.New(places...) }

// BuiltinGazetteer returns the embedded place table (the GeoWorldMap
// substitute).
func BuiltinGazetteer() *Gazetteer { return gazetteer.Builtin() }

// NewExactMatcher matches tokens with the same Porter stem as word,
// scoring 1.
func NewExactMatcher(word string) Matcher { return matcher.Exact{Word: word} }

// NewLexicalMatcher matches tokens within 3 graph edges of word,
// scoring 1 − 0.3·distance.
func NewLexicalMatcher(word string, g *Lexicon) Matcher {
	return matcher.Lexical{Word: word, Graph: g}
}

// NewPhraseMatcher matches a multi-word name: full in-order
// occurrences score 1; lone occurrences of head (if non-empty) score
// headScore.
func NewPhraseMatcher(name string, words []string, head string, headScore float64) Matcher {
	return matcher.Phrase{Name: name, Words: words, Head: head, FullScore: 1, HeadScore: headScore}
}

// NewDateMatcher matches month names and years in [1990, 2010] with
// score 1 (the paper's DBWorld date matcher).
func NewDateMatcher() Matcher { return matcher.Date{} }

// NewPlaceMatcher matches gazetteer places with score 1 and direct
// lexical neighbours of "place" with score 0.7 (the paper's DBWorld
// place matcher).
func NewPlaceMatcher(gz *Gazetteer, g *Lexicon) Matcher {
	return matcher.Place{Gazetteer: gz, Graph: g}
}

// NewUnionMatcher merges several matchers for one query term (e.g.
// conference|workshop), keeping the best score per location.
func NewUnionMatcher(name string, ms ...Matcher) Matcher {
	return matcher.Union{Name: name, Matchers: ms}
}

// CheckWIN probes a custom WIN scoring function against the
// monotonicity and optimal-substructure contract of the paper's
// Definition 3 on n randomized inputs, returning the first violation
// found. Run it in your tests when implementing a WIN instance;
// BestWIN's correctness depends on the contract.
func CheckWIN(fn WIN, terms, n int, seed int64) error {
	return scorefn.CheckWIN(fn, terms, n, rand.New(rand.NewSource(seed)))
}

// CheckMED probes a custom MED scoring function against Definition 5.
func CheckMED(fn MED, terms, n int, seed int64) error {
	return scorefn.CheckMED(fn, terms, n, rand.New(rand.NewSource(seed)))
}

// CheckMAX probes a custom MAX scoring function against Definition 7,
// and CheckAtMostOneCrossing (below) against the Definition 8 property
// BestMAX additionally requires.
func CheckMAX(fn MAX, terms, n int, seed int64) error {
	return scorefn.CheckMAX(fn, terms, n, rand.New(rand.NewSource(seed)))
}

// CheckAtMostOneCrossing numerically probes the at-most-one-crossing
// property over the integer location range [lo, hi].
func CheckAtMostOneCrossing(fn MAX, terms, n, lo, hi int, seed int64) error {
	return scorefn.CheckAtMostOneCrossing(fn, terms, n, lo, hi, rand.New(rand.NewSource(seed)))
}

// ScoreUpperBoundWIN is the largest score any matchset drawn from
// lists with the given per-list maximum match scores can reach under
// fn — the proximity-free best case the engine prunes against. See
// DESIGN.md "Score-upper-bound pruning".
func ScoreUpperBoundWIN(fn WIN, perListMax []float64) float64 {
	return scorefn.UpperBoundWIN(fn, perListMax)
}

// ScoreUpperBoundMED is ScoreUpperBoundWIN for MED functions.
func ScoreUpperBoundMED(fn MED, perListMax []float64) float64 {
	return scorefn.UpperBoundMED(fn, perListMax)
}

// ScoreUpperBoundMAX is ScoreUpperBoundWIN for MAX functions.
func ScoreUpperBoundMAX(fn MAX, perListMax []float64) float64 {
	return scorefn.UpperBoundMAX(fn, perListMax)
}

// CheckUpperBoundWIN probes that fn's score upper bound dominates the
// true score on n randomized instances and is exactly attained when
// every list's best match shares one location. Run it alongside
// CheckWIN when implementing a WIN instance: lossless pruning depends
// on the bound never under-estimating.
func CheckUpperBoundWIN(fn WIN, terms, n int, seed int64) error {
	return scorefn.CheckUpperBoundWIN(fn, terms, n, rand.New(rand.NewSource(seed)))
}

// CheckUpperBoundMED is CheckUpperBoundWIN for MED functions.
func CheckUpperBoundMED(fn MED, terms, n int, seed int64) error {
	return scorefn.CheckUpperBoundMED(fn, terms, n, rand.New(rand.NewSource(seed)))
}

// CheckUpperBoundMAX is CheckUpperBoundWIN for MAX functions.
func CheckUpperBoundMAX(fn MAX, terms, n int, seed int64) error {
	return scorefn.CheckUpperBoundMAX(fn, terms, n, rand.New(rand.NewSource(seed)))
}
