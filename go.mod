module bestjoin

go 1.22
