module bestjoin

go 1.23
