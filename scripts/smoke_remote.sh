#!/bin/sh
# End-to-end smoke test of the networked shard tier: build proxserve,
# start two real shard processes (-serve-shard -shard-of i/2) and a
# coordinator (-shards-at ... -quorum 1), then drive queries through a
# rolling restart of both shards. The gate: not a single query may
# fail. While a shard is down the coordinator must keep answering
# (degraded, flagged as such in the JSON body); once both shards are
# back the fleet must report healthy again.
#
# Needs curl or wget for HTTP; skips cleanly when neither is present
# (the in-repo equivalent runs as TestRemoteRollingRestart).
set -eu

cd "$(dirname "$0")/.."

if command -v curl >/dev/null 2>&1; then
    fetch() { curl -fsS --max-time 5 "$1"; }
elif command -v wget >/dev/null 2>&1; then
    fetch() { wget -qO- -T 5 "$1"; }
else
    echo "smoke-remote: neither curl nor wget installed; skipping"
    exit 0
fi

TMP="$(mktemp -d)"
PIDS=""
cleanup() {
    for p in $PIDS; do
        kill "$p" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "== build proxserve =="
go build -o "$TMP/proxserve" ./cmd/proxserve

# Ports derived from the PID so parallel runs on a shared host don't
# collide; three consecutive ports for coordinator + two shards.
BASE=$(( 17000 + ($$ % 4000) * 3 % 12000 ))
COORD="127.0.0.1:$BASE"
SHARD0="127.0.0.1:$(( BASE + 1 ))"
SHARD1="127.0.0.1:$(( BASE + 2 ))"

start_shard() { # $1 = shard ordinal, $2 = address; echoes the pid
    "$TMP/proxserve" -synth 400 -serve-shard -shard-of "$1/2" \
        -http "$2" >"$TMP/shard$1.log" 2>&1 &
    echo $!
}

wait_healthy() { # $1 = address, $2 = label
    i=0
    while ! fetch "http://$1/healthz" >/dev/null 2>&1; do
        i=$(( i + 1 ))
        if [ "$i" -gt 100 ]; then
            echo "smoke-remote: $2 at $1 never became healthy" >&2
            cat "$TMP"/*.log >&2 || true
            exit 1
        fi
        sleep 0.1
    done
}

echo "== start 2 shard processes + coordinator =="
PID0="$(start_shard 0 "$SHARD0")"
PID1="$(start_shard 1 "$SHARD1")"
PIDS="$PID0 $PID1"
wait_healthy "$SHARD0" "shard 0"
wait_healthy "$SHARD1" "shard 1"

"$TMP/proxserve" -shards-at "$SHARD0,$SHARD1" -quorum 1 \
    -http "$COORD" >"$TMP/coord.log" 2>&1 &
CPID=$!
PIDS="$PIDS $CPID"
wait_healthy "$COORD" "coordinator"

QUERY="http://$COORD/query?terms=lenovo,nba,partnership&k=5"
FAILED=0
DEGRADED=0
run_queries() { # $1 = count, $2 = label
    n=0
    while [ "$n" -lt "$1" ]; do
        n=$(( n + 1 ))
        if body="$(fetch "$QUERY")"; then
            case "$body" in
            *'"Docs"'*) ;;
            *)
                echo "smoke-remote: $2 query $n returned no Docs field: $body" >&2
                FAILED=$(( FAILED + 1 ))
                ;;
            esac
            case "$body" in
            *'"degraded":true'* | *'"degraded": true'*) DEGRADED=$(( DEGRADED + 1 )) ;;
            esac
        else
            echo "smoke-remote: $2 query $n failed outright" >&2
            FAILED=$(( FAILED + 1 ))
        fi
    done
}

# settle polls until a query answers non-degraded: after a shard
# restart its circuit breaker stays open for a cooldown, so a
# health-gated roll must not take down the next shard until the fleet
# has genuinely re-absorbed the previous one.
settle() { # $1 = label
    i=0
    while :; do
        body="$(fetch "$QUERY")" || body=""
        case "$body" in
        *'"degraded":false'* | *'"degraded": false'*) return 0 ;;
        esac
        i=$(( i + 1 ))
        if [ "$i" -gt 50 ]; then
            echo "smoke-remote: fleet still degraded $1" >&2
            cat "$TMP"/*.log >&2 || true
            exit 1
        fi
        sleep 0.1
    done
}

echo "== queries against the healthy fleet =="
run_queries 5 "healthy"
if [ "$DEGRADED" -ne 0 ]; then
    echo "smoke-remote: healthy fleet answered degraded" >&2
    exit 1
fi

echo "== rolling restart: shard 0, then shard 1, under query load =="
for ORD in 0 1; do
    if [ "$ORD" = 0 ]; then PID="$PID0"; ADDR="$SHARD0"; else PID="$PID1"; ADDR="$SHARD1"; fi
    kill "$PID"
    wait "$PID" 2>/dev/null || true
    run_queries 10 "shard $ORD down"
    NEWPID="$(start_shard "$ORD" "$ADDR")"
    PIDS="$PIDS $NEWPID"
    wait_healthy "$ADDR" "restarted shard $ORD"
    settle "after restarting shard $ORD"
    run_queries 5 "shard $ORD restarted"
done

if [ "$FAILED" -ne 0 ]; then
    echo "smoke-remote: $FAILED queries failed during the rolling restart" >&2
    cat "$TMP"/*.log >&2 || true
    exit 1
fi
if [ "$DEGRADED" -eq 0 ]; then
    echo "smoke-remote: no query answered degraded while a shard was down" >&2
    exit 1
fi

# Both shards restarted: the fleet must settle back to healthy,
# full-fleet answers.
echo "== fleet settles back to non-degraded =="
settle "after both shards restarted"

echo "smoke-remote: OK ($DEGRADED degraded answers while shards were down, 0 failed queries)"
