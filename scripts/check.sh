#!/bin/sh
# Repo-wide verification: vet, build, and the full test suite under
# the race detector. The engine worker pool and its LRU caches are the
# repo's first seriously concurrent code paths, so -race is mandatory
# here even though it slows the run down.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

# Optional: refresh BENCH_engine.json (slow; off by default so the
# gate stays fast). Enable with CHECK_BENCH=1 make check.
if [ "${CHECK_BENCH:-0}" = "1" ]; then
    ./scripts/benchjson.sh
fi

echo "check: OK"
