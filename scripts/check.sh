#!/bin/sh
# Repo-wide verification: vet, build, and the full test suite under
# the race detector. The engine worker pool and its LRU caches are the
# repo's first seriously concurrent code paths, so -race is mandatory
# here even though it slows the run down.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

# Chaos gate: the same engine tests plus the fault-injection harness,
# with the injection sites armed by the faultinject build tag, still
# under -race. Injected kernel panics, corrupt decodes, latency, and
# cache-miss storms must never crash, race, or mis-score a document —
# on the single engine and through the sharded scatter-gather tier
# (the plain -race run above already covers the shard differential;
# this arms the injection sites on top). The remote package adds the
# network fault sites: latency, dropped connections, 500s, and
# truncated response bytes against a real HTTP fleet.
echo "== go test -race -tags faultinject (chaos) =="
go test -race -tags faultinject ./internal/faultinject/ ./internal/engine/ ./internal/shard/ ./internal/remote/

# Allocation ceiling: the warm-cache query path must stay under a
# fixed allocs/op budget (testing.AllocsPerRun inside the test). Run
# without -race — the race runtime adds allocations of its own and
# would make the ceiling meaningless.
echo "== cached-path allocation ceiling =="
go test -count=1 -run TestEngineCachedAllocCeiling ./internal/engine/

# Known-vulnerability scan, when the tool is installed (the CI image
# may not ship it; the gate must not fail on a missing scanner).
if command -v govulncheck >/dev/null 2>&1; then
    echo "== govulncheck =="
    govulncheck ./...
else
    echo "== govulncheck not installed; skipping =="
fi

# Coverage gate: the packages carrying the pruning machinery and the
# decode/coalescing hot path must not silently lose test coverage.
# Floors are measured-minus-two at the time each floor was recorded
# (engine 93.2%, scorefn 92.3%, index 93.3%, shard 98.7% — the index
# figure includes the batched group-varint codec); raise them when
# coverage rises.
echo "== coverage floors =="
check_cover() {
    pkg="$1"
    floor="$2"
    pct="$(go test -count=1 -cover "$pkg" | awk '{
        for (i = 1; i <= NF; i++)
            if ($i == "coverage:") { sub(/%$/, "", $(i + 1)); print $(i + 1) }
    }')"
    if [ -z "$pct" ]; then
        echo "coverage: no figure reported for $pkg" >&2
        exit 1
    fi
    if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
        echo "coverage: $pkg at ${pct}% is below the ${floor}% floor" >&2
        exit 1
    fi
    echo "coverage: $pkg ${pct}% (floor ${floor}%)"
}
check_cover ./internal/engine/  90.3
check_cover ./internal/scorefn/ 90.3
check_cover ./internal/index/   88.5
check_cover ./internal/shard/   97.1
check_cover ./internal/remote/  80.6

# End-to-end smoke of the networked shard tier: two real shard
# processes and a coordinator, queried through a rolling restart with
# zero tolerated failures (skips itself when curl/wget are missing).
echo "== remote fleet smoke =="
./scripts/smoke_remote.sh

# Optional: refresh BENCH_engine.json (slow; off by default so the
# gate stays fast). Enable with CHECK_BENCH=1 make check.
if [ "${CHECK_BENCH:-0}" = "1" ]; then
    ./scripts/benchjson.sh
fi

echo "check: OK"
