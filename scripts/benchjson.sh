#!/bin/sh
# Run the engine benchmarks with -benchmem and write BENCH_engine.json:
# one record per benchmark with ns/op, B/op, and allocs/op. Benchmarks
# run with -count=3 and every metric is reduced to its per-benchmark
# median before JSON emission and before the regression gate, so one
# noisy run on a shared host cannot fake (or mask) a regression. When
# BENCH_engine.baseline.txt exists (raw `go test -bench` output saved
# before a performance change), its numbers are embedded as "baseline"
# so the JSON carries the before/after comparison in one file; the
# medianizer is generic over run count, so a single-run baseline file
# still parses.
#
# Usage: scripts/benchjson.sh [benchtime]   (default 100x; the
# admission-control benchmark needs enough iterations to saturate its
# in-flight cap, or shed/op reads as zero)
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-100x}"
COUNT="${BENCH_COUNT:-3}"
RAW="$(mktemp)"
MED="$(mktemp)"
MEDBASE="$(mktemp)"
trap 'rm -f "$RAW" "$MED" "$MEDBASE"' EXIT

echo "== go test -bench=BenchmarkEngine -benchmem (benchtime=$BENCHTIME, count=$COUNT) =="
go test -run='^$' -bench='BenchmarkEngine' -benchmem -benchtime="$BENCHTIME" -count="$COUNT" . | tee "$RAW"

# Reduce repeated benchmark lines to one line per benchmark carrying
# the per-metric median, preserving the value/unit pair layout of
# `go test -bench` output so the JSON parser and the regression gate
# read medianized files exactly like raw ones. Works for any -count,
# including a count=1 baseline file (median of one value is itself).
medianize() {
    awk '
    function median(name, u,    k, i, j, tmp, cnt) {
        cnt = runs[name]
        for (i = 1; i <= cnt; i++) sortbuf[i] = vals[name, u, i] + 0
        for (i = 2; i <= cnt; i++) {          # insertion sort: cnt is tiny
            tmp = sortbuf[i]
            for (j = i - 1; j >= 1 && sortbuf[j] > tmp; j--) sortbuf[j + 1] = sortbuf[j]
            sortbuf[j + 1] = tmp
        }
        if (cnt % 2) return sortbuf[(cnt + 1) / 2]
        return (sortbuf[cnt / 2] + sortbuf[cnt / 2 + 1]) / 2
    }
    /^Benchmark/ && $2 ~ /^[0-9]+$/ {
        name = $1
        if (!(name in runs)) order[++n] = name
        runs[name]++
        u = 0
        for (i = 3; i + 1 <= NF; i += 2) {
            u++
            unit[name, u] = $(i + 1)
            vals[name, u, runs[name]] = $i
        }
        nunits[name] = u
    }
    END {
        for (k = 1; k <= n; k++) {
            name = order[k]
            line = name " 1"
            for (u = 1; u <= nunits[name]; u++)
                line = line sprintf(" %g %s", median(name, u), unit[name, u])
            print line
        }
    }
    ' "$1"
}

medianize "$RAW" > "$MED"

# Parse `BenchmarkName  N  X ns/op  Y B/op  Z allocs/op` lines to JSON.
# Custom b.ReportMetric units ride along when present: pruneddocs/op
# and joins/op from the pruning benchmark, shed/op from the admission
# control benchmark, and blocksskipped/op + blockdecodes/op from the
# cold benchmark (the block-max skip layer's decode-avoidance rate),
# and pivotskips/op + unioncandidates/op from the disjunctive union
# benchmark (the WAND layer's skip rate), and shardqueries/op +
# mergedcandidates/op from the sharded scatter-gather benchmark (the
# fan-out cost and rank-merge width), and coalesceddecodes/op +
# decodewaits/op from the concurrent-query coalescing benchmark (how
# many duplicate decodes the singleflight layer collapsed), and
# hedged/op + retried/op from the remote fleet benchmark (speculative
# and repeated shard attempts: ~0 on a healthy loopback fleet, so
# drift flags a latency regression or transport flakiness), and
# pairhits/op + pairboundprunes/op from the pair-index benchmark (the
# auxiliary pair tier's list hits and the candidates its tightened
# bounds retired).
# The cached BenchmarkEngine path doubles as the panic-recovery
# overhead gauge — the recover() wrappers sit on every join, so any
# regression shows up directly against the baseline (the budget is <1%).
bench_to_json() {
    awk '
    /^Benchmark/ {
        name = $1
        ns = bytes = allocs = pruned = joins = shed = bskip = bdec = pskip = ucand = shq = mcand = codec = dwait = hedged = retried = phits = pprunes = ""
        for (i = 2; i <= NF; i++) {
            if ($i == "ns/op")             ns = $(i - 1)
            if ($i == "B/op")              bytes = $(i - 1)
            if ($i == "allocs/op")         allocs = $(i - 1)
            if ($i == "pruneddocs/op")     pruned = $(i - 1)
            if ($i == "joins/op")          joins = $(i - 1)
            if ($i == "shed/op")           shed = $(i - 1)
            if ($i == "blocksskipped/op")  bskip = $(i - 1)
            if ($i == "blockdecodes/op")   bdec = $(i - 1)
            if ($i == "pivotskips/op")     pskip = $(i - 1)
            if ($i == "unioncandidates/op") ucand = $(i - 1)
            if ($i == "shardqueries/op")    shq = $(i - 1)
            if ($i == "mergedcandidates/op") mcand = $(i - 1)
            if ($i == "coalesceddecodes/op") codec = $(i - 1)
            if ($i == "decodewaits/op")      dwait = $(i - 1)
            if ($i == "hedged/op")           hedged = $(i - 1)
            if ($i == "retried/op")          retried = $(i - 1)
            if ($i == "pairhits/op")         phits = $(i - 1)
            if ($i == "pairboundprunes/op")  pprunes = $(i - 1)
        }
        if (ns == "") next
        if (out != "") out = out ","
        rec = sprintf("\n    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s",
                      name, ns, bytes == "" ? "null" : bytes, allocs == "" ? "null" : allocs)
        if (pruned != "") rec = rec sprintf(", \"pruneddocs_per_op\": %s", pruned)
        if (joins != "")  rec = rec sprintf(", \"joins_per_op\": %s", joins)
        if (shed != "")   rec = rec sprintf(", \"shed_per_op\": %s", shed)
        if (bskip != "")  rec = rec sprintf(", \"blocksskipped_per_op\": %s", bskip)
        if (bdec != "")   rec = rec sprintf(", \"blockdecodes_per_op\": %s", bdec)
        if (pskip != "")  rec = rec sprintf(", \"pivotskips_per_op\": %s", pskip)
        if (ucand != "")  rec = rec sprintf(", \"unioncandidates_per_op\": %s", ucand)
        if (shq != "")    rec = rec sprintf(", \"shardqueries_per_op\": %s", shq)
        if (mcand != "")  rec = rec sprintf(", \"mergedcandidates_per_op\": %s", mcand)
        if (codec != "")  rec = rec sprintf(", \"coalesceddecodes_per_op\": %s", codec)
        if (dwait != "")  rec = rec sprintf(", \"decodewaits_per_op\": %s", dwait)
        if (hedged != "")  rec = rec sprintf(", \"hedged_per_op\": %s", hedged)
        if (retried != "") rec = rec sprintf(", \"retried_per_op\": %s", retried)
        if (phits != "")   rec = rec sprintf(", \"pairhits_per_op\": %s", phits)
        if (pprunes != "") rec = rec sprintf(", \"pairboundprunes_per_op\": %s", pprunes)
        out = out rec "}"
    }
    END { printf "[%s\n  ]", out }
    ' "$1"
}

{
    printf '{\n  "benchmarks": '
    bench_to_json "$MED"
    if [ -f BENCH_engine.baseline.txt ]; then
        medianize BENCH_engine.baseline.txt > "$MEDBASE"
        printf ',\n  "baseline": '
        bench_to_json "$MEDBASE"
    fi
    printf '\n}\n'
} > BENCH_engine.json

echo "wrote BENCH_engine.json"

# Warm-path regression gate: the cached BenchmarkEngineColdVsCached
# run must stay within 1.25x of the saved baseline's ns/op. Both sides
# are medians (count=3 current vs whatever count the baseline holds),
# so a single outlier run cannot trip or hide the gate; the 1.25x
# slack absorbs what noise survives the median on a shared host — a
# real regression (e.g. losing the keyed join kernel or the coalesced
# cache hit) is 1.5x or more. Informational on manual runs; fatal
# under CHECK_BENCH=1 so scripts/check.sh turns it into a CI failure.
cached_ns() {
    awk 'index($1, "BenchmarkEngineColdVsCached/cached") == 1 {
        for (i = 2; i <= NF; i++) if ($i == "ns/op") { print $(i - 1); exit }
    }' "$1"
}
if [ -f BENCH_engine.baseline.txt ]; then
    cur="$(cached_ns "$MED")"
    base="$(cached_ns "$MEDBASE")"
    if [ -n "$cur" ] && [ -n "$base" ]; then
        if awk -v c="$cur" -v b="$base" 'BEGIN { exit !(c > b * 1.25) }'; then
            echo "WARM-PATH REGRESSION: cached query $cur ns/op vs baseline $base ns/op (limit 1.25x, medians)"
            if [ "${CHECK_BENCH:-}" = "1" ]; then
                exit 1
            fi
        else
            echo "warm path ok: cached query $cur ns/op vs baseline $base ns/op (limit 1.25x, medians)"
        fi
    fi
fi
