# Convenience targets; `make check` is the gate every change must pass.

.PHONY: check test bench fuzz

check:
	./scripts/check.sh

test:
	go test ./...

bench:
	go test -bench=. -benchmem ./...

# Short fuzz passes over the untrusted-bytes decode paths.
fuzz:
	go test -run=Fuzz -fuzz=FuzzDecode -fuzztime=30s ./internal/match/
	go test -run=Fuzz -fuzz=FuzzDecodePostings -fuzztime=30s ./internal/index/
	go test -run=Fuzz -fuzz=FuzzLoadCompact -fuzztime=30s ./internal/index/
