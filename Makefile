# Convenience targets; `make check` is the gate every change must pass.

.PHONY: check test cover bench bench-json fuzz

check:
	./scripts/check.sh

test:
	go test ./...

# Per-package statement coverage; scripts/check.sh enforces floors on
# the engine, scorefn, and index packages.
cover:
	go test -count=1 -cover ./...

bench:
	go test -bench=. -benchmem ./...

# Engine benchmarks with -benchmem, parsed into BENCH_engine.json
# (ns/op, B/op, allocs/op per benchmark; the saved pre-refactor
# baseline is embedded when BENCH_engine.baseline.txt exists).
bench-json:
	./scripts/benchjson.sh

# Short fuzz passes over the untrusted-bytes decode paths.
fuzz:
	go test -run=Fuzz -fuzz=FuzzDecode -fuzztime=30s ./internal/match/
	go test -run=Fuzz -fuzz=FuzzDecodePostings -fuzztime=30s ./internal/index/
	go test -run=Fuzz -fuzz=FuzzDecodeDocMax -fuzztime=30s ./internal/index/
	go test -run=Fuzz -fuzz=FuzzLoadCompact -fuzztime=30s ./internal/index/
