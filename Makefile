# Convenience targets; `make check` is the gate every change must pass.

.PHONY: check test cover bench bench-json fuzz chaos smoke-remote profile

check:
	./scripts/check.sh

test:
	go test ./...

# Per-package statement coverage; scripts/check.sh enforces floors on
# the engine, scorefn, and index packages.
cover:
	go test -count=1 -cover ./...

bench:
	go test -bench=. -benchmem ./...

# Engine benchmarks with -benchmem, parsed into BENCH_engine.json
# (ns/op, B/op, allocs/op per benchmark; the saved pre-refactor
# baseline is embedded when BENCH_engine.baseline.txt exists).
bench-json:
	./scripts/benchjson.sh

# Short fuzz passes over the untrusted-bytes decode paths.
fuzz:
	go test -run=Fuzz -fuzz=FuzzDecode -fuzztime=30s ./internal/match/
	go test -run=Fuzz -fuzz=FuzzDecodePostings -fuzztime=30s ./internal/index/
	go test -run=Fuzz -fuzz=FuzzDecodeDocMax -fuzztime=30s ./internal/index/
	go test -run=Fuzz -fuzz=FuzzLoadCompact -fuzztime=30s ./internal/index/
	go test -run=Fuzz -fuzz=FuzzLoadFile -fuzztime=30s ./internal/index/
	go test -run=Fuzz -fuzz=FuzzDecodeBlocks -fuzztime=30s ./internal/index/
	go test -run=Fuzz -fuzz=FuzzDecodeBatch -fuzztime=30s ./internal/index/
	go test -run=Fuzz -fuzz=FuzzDecodePairs -fuzztime=30s ./internal/index/

# CPU and heap profiles of the cold/cached engine benchmark, for
# digging into the block-max skip layer with `go tool pprof cpu.prof`
# (or heap.prof). Profiles land in the repo root and are gitignored.
profile:
	go test -run='^$$' -bench=BenchmarkEngineColdVsCached -benchmem \
		-cpuprofile=cpu.prof -memprofile=heap.prof .
	@echo "wrote cpu.prof and heap.prof; inspect with: go tool pprof cpu.prof"

# Fault-injection chaos suite: the faultinject build tag arms the
# injection sites, and -race proves the recovery paths (kernel
# rebuild, degraded decode, cache repopulation) are data-race-free.
# scripts/check.sh runs this too; the target exists for quick local
# iteration on the fault-tolerance layer.
chaos:
	go test -race -tags faultinject ./internal/faultinject/ ./internal/engine/ ./internal/shard/ ./internal/remote/

# End-to-end smoke of the networked shard tier: builds proxserve,
# starts two shard processes and a coordinator, and rolls the shards
# under query load — zero failed queries tolerated. scripts/check.sh
# runs this too; the target exists for quick local iteration.
smoke-remote:
	./scripts/smoke_remote.sh
