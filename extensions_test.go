package bestjoin_test

import (
	"fmt"
	"math"
	"testing"

	"bestjoin"
)

func TestTopKOrderingAndTruncation(t *testing.T) {
	lists := figure1Lists()
	fn := bestjoin.ExpMED{Alpha: 0.1}
	all := bestjoin.ByLocationMED(fn, lists)
	top2 := bestjoin.TopKMED(fn, lists, 2)
	if len(top2) != 2 {
		t.Fatalf("TopKMED returned %d, want 2", len(top2))
	}
	if top2[0].Score < top2[1].Score {
		t.Error("TopK not sorted best-first")
	}
	// The first entry must be the global optimum.
	best := bestjoin.BestMED(fn, lists)
	if math.Abs(top2[0].Score-best.Score) > 1e-9 {
		t.Errorf("TopK[0] score %v != overall best %v", top2[0].Score, best.Score)
	}
	// Asking for more than exists returns everything.
	if got := bestjoin.TopKMED(fn, lists, 1000); len(got) != len(all) {
		t.Errorf("TopK(1000) returned %d, want %d", len(got), len(all))
	}
	if got := bestjoin.TopKWIN(bestjoin.ExpWIN{Alpha: 0.1}, lists, 1); len(got) != 1 {
		t.Errorf("TopKWIN(1) returned %d", len(got))
	}
	if got := bestjoin.TopKMAX(bestjoin.SumMAX{Alpha: 0.1}, lists, 3); len(got) != 3 {
		t.Errorf("TopKMAX(3) returned %d", len(got))
	}
}

func TestStreamMEDFacadeMatchesByLocation(t *testing.T) {
	lists := figure1Lists()
	fn := bestjoin.ExpMED{Alpha: 0.1}
	want := bestjoin.ByLocationMED(fn, lists)
	var got []bestjoin.Anchored
	bestjoin.StreamMED(fn, 1.0, lists, func(a bestjoin.Anchored) { got = append(got, a) })
	if len(got) != len(want) {
		t.Fatalf("stream %d anchors, batch %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Anchor != want[i].Anchor || math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("anchor %d differs: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestBestTypeAnchored(t *testing.T) {
	lists := figure1Lists()
	fn := bestjoin.SumMAX{Alpha: 0.1}
	res := bestjoin.BestTypeAnchored(fn, 0, lists)
	if !res.OK {
		t.Fatal("no matchset")
	}
	// Never better than the unconstrained MAX.
	unconstrained := bestjoin.BestMAX(fn, lists)
	if res.Score > unconstrained.Score+1e-9 {
		t.Errorf("type-anchored %v exceeds MAX %v", res.Score, unconstrained.Score)
	}
}

func TestEncodeDecodeListsRoundTrip(t *testing.T) {
	lists := figure1Lists()
	got, err := bestjoin.DecodeLists(bestjoin.EncodeLists(lists))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(lists) {
		t.Fatalf("decoded %d lists", len(got))
	}
	for j := range lists {
		for i := range lists[j] {
			if got[j][i] != lists[j][i] {
				t.Fatalf("list %d differs after round trip", j)
			}
		}
	}
	// And the decoded instance joins identically.
	fn := bestjoin.ExpWIN{Alpha: 0.1}
	a, b := bestjoin.BestWIN(fn, lists), bestjoin.BestWIN(fn, got)
	if a.Score != b.Score {
		t.Errorf("round-tripped instance scores %v, original %v", b.Score, a.Score)
	}
}

func TestBatchPreservesOrderAndMatchesSequential(t *testing.T) {
	docs := make([]bestjoin.MatchLists, 40)
	for i := range docs {
		// Shifted copies of the Figure 1 instance, so every document
		// has a distinct best score region.
		base := figure1Lists()
		for j := range base {
			for k := range base[j] {
				base[j][k].Loc += i * 7
			}
		}
		docs[i] = base
	}
	fn := bestjoin.ExpMED{Alpha: 0.1}
	solve := func(ls bestjoin.MatchLists) bestjoin.Result { return bestjoin.BestMED(fn, ls) }
	par := bestjoin.Batch(docs, 4, solve)
	if len(par) != len(docs) {
		t.Fatalf("Batch returned %d results", len(par))
	}
	for i, doc := range docs {
		seq := solve(doc)
		if math.Abs(par[i].Score-seq.Score) > 1e-12 || par[i].OK != seq.OK {
			t.Fatalf("doc %d: parallel %v, sequential %v", i, par[i], seq)
		}
	}
	// Degenerate worker counts must still work.
	if got := bestjoin.Batch(docs[:3], -1, solve); len(got) != 3 {
		t.Errorf("Batch with workers=-1 returned %d", len(got))
	}
	if got := bestjoin.Batch(nil, 2, solve); len(got) != 0 {
		t.Errorf("Batch(nil) returned %d", len(got))
	}
}

func TestRankDocuments(t *testing.T) {
	weak := bestjoin.MatchLists{
		{{Loc: 0, Score: 0.3}}, {{Loc: 50, Score: 0.3}},
	}
	strong := bestjoin.MatchLists{
		{{Loc: 0, Score: 0.9}}, {{Loc: 1, Score: 0.9}},
	}
	empty := bestjoin.MatchLists{{}, {{Loc: 3, Score: 1}}}
	fn := bestjoin.ExpWIN{Alpha: 0.1}
	ranked := bestjoin.RankDocuments([]bestjoin.MatchLists{weak, strong, empty},
		func(ls bestjoin.MatchLists) bestjoin.Result { return bestjoin.BestWIN(fn, ls) })
	if len(ranked) != 2 {
		t.Fatalf("ranked %d documents, want 2 (one has no matchset)", len(ranked))
	}
	if ranked[0].Doc != 1 || ranked[1].Doc != 0 {
		t.Errorf("ranking order = %v, want strong first", ranked)
	}
}

func ExampleStreamMED() {
	lists := bestjoin.MatchLists{
		{{Loc: 10, Score: 0.9}, {Loc: 500, Score: 0.9}},
		{{Loc: 12, Score: 0.8}, {Loc: 503, Score: 0.8}},
	}
	// Scores are promised to be at most 1, so each anchor is emitted as
	// soon as no future match can change it.
	bestjoin.StreamMED(bestjoin.ExpMED{Alpha: 0.1}, 1.0, lists, func(a bestjoin.Anchored) {
		fmt.Println(a.Anchor)
	})
	// Output:
	// 12
	// 500
	// 503
}

func ExampleTopKMED() {
	lists := bestjoin.MatchLists{
		{{Loc: 10, Score: 0.9}, {Loc: 100, Score: 0.6}},
		{{Loc: 12, Score: 0.8}, {Loc: 101, Score: 0.5}},
	}
	for _, a := range bestjoin.TopKMED(bestjoin.ExpMED{Alpha: 0.1}, lists, 2) {
		fmt.Printf("anchor %d score %.3f\n", a.Anchor, a.Score)
	}
	// Output:
	// anchor 12 score 0.589
	// anchor 101 score 0.271
}

func ExampleBatch() {
	docs := []bestjoin.MatchLists{
		{{{Loc: 1, Score: 0.9}}, {{Loc: 3, Score: 0.8}}},
		{{{Loc: 5, Score: 0.4}}, {{Loc: 50, Score: 0.4}}},
	}
	fn := bestjoin.ExpWIN{Alpha: 0.1}
	results := bestjoin.Batch(docs, 2, func(ls bestjoin.MatchLists) bestjoin.Result {
		return bestjoin.BestWIN(fn, ls)
	})
	fmt.Printf("%.3f %.3f\n", results[0].Score, results[1].Score)
	// Output: 0.589 0.002
}

func TestKBestWINFacade(t *testing.T) {
	lists := figure1Lists()
	fn := bestjoin.ExpWIN{Alpha: 0.1}
	top := bestjoin.KBestWIN(fn, lists, 5)
	if len(top) != 5 {
		t.Fatalf("KBestWIN(5) returned %d", len(top))
	}
	best := bestjoin.BestWIN(fn, lists)
	if math.Abs(top[0].Score-best.Score) > 1e-9 {
		t.Errorf("KBest[0] = %v, overall best %v", top[0].Score, best.Score)
	}
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Error("KBestWIN not sorted best first")
		}
	}
}
