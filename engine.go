package bestjoin

import (
	"bestjoin/internal/engine"
	"bestjoin/internal/index"
	"bestjoin/internal/remote"
	"bestjoin/internal/shard"
)

// This file is the public surface of the retrieval-engine slice: the
// inverted-index substrate and the concurrent indexed query engine of
// internal/engine. Together with the join primitives in bestjoin.go
// this gives the full path from "query + corpus" to "ranked answers":
// index documents, compact, build an engine, Search.

// Index is an in-memory inverted index over tokenized documents; add
// documents with AddText, then Compact it for querying.
type Index = index.Index

// NewIndex returns an empty inverted index.
func NewIndex() *Index { return index.New() }

// CompactIndex is the compressed, read-only form of an Index — the
// representation a production system keeps on disk (Marshal /
// LoadCompactIndex) and queries through an Engine.
type CompactIndex = index.Compact

// LoadCompactIndex deserializes a CompactIndex.Marshal buffer,
// validating every posting list eagerly so corrupt or adversarial
// bytes fail here rather than at query time. Both the framed
// (checksummed) and the pre-framing legacy layout are accepted.
func LoadCompactIndex(b []byte) (*CompactIndex, error) { return index.LoadCompact(b) }

// ErrCorruptIndex tags every corruption error from index loading —
// bad magic, truncation, checksum mismatch, or invalid postings.
// Test with errors.Is.
var ErrCorruptIndex = index.ErrCorrupt

// LoadCompactIndexFile reads and verifies an index file written by
// CompactIndex.SaveFile. Truncated or bit-rotted files fail with an
// error wrapping ErrCorruptIndex; they are never served as query data.
func LoadCompactIndexFile(path string) (*CompactIndex, error) { return index.LoadFile(path) }

// Concept is a scored disjunction of words: the specific terms whose
// inverted lists together form the match list of one general query
// term (the paper's footnote-1 construction), each with the score its
// occurrences carry.
type Concept = index.Concept

// Engine is a concurrent retrieval engine over a CompactIndex: it
// evaluates multi-concept queries document-at-a-time on a sharded
// worker pool, keeps a global top-k heap, caches decoded match lists
// in an LRU, honors context deadlines (returning Partial results),
// and exposes counters and latency histograms via Stats.
//
// By default the engine prunes losslessly: candidates whose score
// upper bound (from per-concept maximum match scores) is strictly
// below the current top-k floor are skipped without running the join,
// with output guaranteed identical to the exhaustive engine — see
// DESIGN.md "Score-upper-bound pruning". Set
// EngineConfig.DisablePruning for the exhaustive baseline.
//
// Concepts with block-partitioned postings registered on the index
// (CompactIndex.AddConceptBlocks) additionally prune below the
// decode: candidates come from per-block skip tables, posting blocks
// are decoded lazily and in parallel on the worker pool, and blocks
// whose block-max bound cannot beat the floor are never decoded at
// all — output stays identical to the flat path. See DESIGN.md
// "Block-max skip layer".
type Engine = engine.Engine

// The engine degrades instead of dying under partial failure: kernel
// panics are isolated to single documents (Result.Degraded),
// MaxInFlight admission control bounds concurrency (ErrOverloaded),
// and SwapIndex hot-reloads the live index without draining queries.
// See DESIGN.md "Failure model & graceful degradation".

// EngineConfig sizes an Engine: worker count, cache capacities, the
// DisablePruning switch (pruning is on by default), and the admission
// control knobs MaxInFlight and Overload.
type EngineConfig = engine.Config

// ErrOverloaded is returned by Engine.Search when admission control
// rejects the query; servers should map it to a retryable status.
var ErrOverloaded = engine.ErrOverloaded

// OverloadPolicy selects what Search does at the MaxInFlight cap:
// block until the caller's context expires, or shed immediately.
type OverloadPolicy = engine.OverloadPolicy

const (
	// OverloadBlock waits for a free slot until the query's context is
	// done (the default policy).
	OverloadBlock = engine.OverloadBlock
	// OverloadShed fails fast with ErrOverloaded, never queueing.
	OverloadShed = engine.OverloadShed
)

// EngineQuery is one retrieval request: concepts, a joiner, K, and —
// for disjunctive retrieval — the query Mode and MinMatch threshold.
type EngineQuery = engine.Query

// QueryMode selects conjunctive (AND, every concept must match) or
// disjunctive (OR, ranked union) evaluation. Disjunctive queries run a
// block-max WAND pivot walk and support m-of-n thresholds through
// EngineQuery.MinMatch; see DESIGN.md "Disjunctive retrieval & WAND
// soundness" for the pruning-bound contract.
type QueryMode = engine.QueryMode

const (
	// ModeDefault defers to EngineConfig.Mode (itself defaulting to AND).
	ModeDefault = engine.ModeDefault
	// ModeAND requires every concept to match (the classic best-join).
	ModeAND = engine.ModeAND
	// ModeOR ranks the union of documents matching at least
	// EngineQuery.MinMatch concepts (1 when unset).
	ModeOR = engine.ModeOR
)

// EngineResult is a query's outcome: top-k documents plus the Partial
// flag and evaluation counts.
type EngineResult = engine.Result

// EngineStats is a snapshot of an Engine's observability counters.
type EngineStats = engine.Stats

// KernelFactory builds one reusable join kernel per engine worker;
// the worker reuses the kernel's scratch across every candidate
// document it evaluates. Adapt a one-shot function with JoinKernelFunc.
type KernelFactory = engine.KernelFactory

// Joiner is the former name of KernelFactory, kept as an alias for
// call sites predating the kernel refactor.
type Joiner = engine.Joiner

// NewEngine builds an engine over a compacted index.
func NewEngine(idx *CompactIndex, cfg EngineConfig) *Engine { return engine.New(idx, cfg) }

// Searcher is the serving contract shared by Engine and ShardedEngine:
// Search, Stats, zero-downtime SwapIndex, and Health. Servers written
// against it cannot tell a single engine from a sharded fleet.
type Searcher = engine.Searcher

// EngineHealth is a Searcher's readiness snapshot: overall readiness,
// the current index epoch (incremented by every SwapIndex / completed
// rolling reload), the corpus size, and — for a sharded fleet — one
// row per shard.
type EngineHealth = engine.Health

// ShardHealth is one shard's row in EngineHealth.Shards.
type ShardHealth = engine.ShardHealth

// ShardedEngine scatter-gathers queries over N doc-partitioned child
// engines and rank-merges their top-k heaps into the global answer —
// bitwise identical to a single Engine over the unsplit index, with
// pruning shared across shards through a fleet-wide floor and rolling
// zero-downtime reloads. See DESIGN.md "Sharded scatter-gather tier".
type ShardedEngine = shard.Coordinator

// NewShardedEngine partitions the index by document id into shards
// pieces (shards ≤ 1 keeps one child) and builds a ShardedEngine over
// them; cfg configures every child engine identically.
func NewShardedEngine(idx *CompactIndex, shards int, cfg EngineConfig) (*ShardedEngine, error) {
	return shard.New(idx, shard.Config{Shards: shards, Engine: cfg})
}

// ShardedEngineConfig carries the coordinator-level knobs of a
// sharded or remote fleet: shard count, per-child engine config,
// quorum degraded mode, and rolling-reload health gating.
type ShardedEngineConfig = shard.Config

// NewShardedEngineConfig builds a ShardedEngine with the full
// coordinator config exposed — NewShardedEngine with the quorum and
// roll-gating knobs available.
func NewShardedEngineConfig(idx *CompactIndex, cfg ShardedEngineConfig) (*ShardedEngine, error) {
	return shard.New(idx, cfg)
}

// JoinSpec names a stock kernel declaratively — scoring family,
// decay rate, valid-matchset restriction — so a query can cross a
// process boundary: the remote tier serializes the spec instead of
// the Joiner closure and the serving side rebuilds an identical
// kernel. Set it on EngineQuery.Spec alongside (or instead of) Join.
type JoinSpec = engine.KernelSpec

// BuildPairIndex precomputes auxiliary pair lists on the index for a
// kernel spec: every unordered pair of the given concepts is costed
// by the product of its posting byte lengths (the frequent-pair model
// of Veretennikov's additional indexes) and registered in descending
// cost order until budgetBytes of encoded lists are stored (≤ 0 means
// unlimited). A two-term conjunctive query carrying that spec is then
// answered straight off the precomputed list, and wider queries use
// the lists to tighten pruning bounds; answers are bitwise identical
// either way. Call at build time, before the index serves queries.
// Returns the number of pairs registered.
func BuildPairIndex(idx *CompactIndex, concepts []Concept, spec JoinSpec, budgetBytes int) (int, error) {
	return engine.BuildPairIndex(idx, concepts, spec, budgetBytes)
}

// RemoteShard is an HTTP client for one shard process; it slots into
// a ShardedEngine as a child. See internal/remote for the robustness
// stack: per-attempt deadline budgets, retries with jittered backoff,
// latency-quantile hedging, and a circuit breaker.
type RemoteShard = remote.Shard

// RemoteShardConfig tunes a RemoteShard's robustness machinery.
type RemoteShardConfig = remote.ShardConfig

// NewRemoteShard builds a client for the shard process at base
// ("host:port" or a URL).
func NewRemoteShard(base string, cfg RemoteShardConfig) *RemoteShard {
	return remote.NewShard(base, cfg)
}

// RemoteServer exposes a Searcher as a shard process's HTTP API
// (/shardquery, /swapindex, /shardstats, /healthz).
type RemoteServer = remote.Server

// RemoteServerConfig bounds a RemoteServer's request surface.
type RemoteServerConfig = remote.ServerConfig

// NewRemoteServer wraps a searcher for serving as a shard process.
func NewRemoteServer(s Searcher, cfg RemoteServerConfig) *RemoteServer {
	return remote.NewServer(s, cfg)
}

// NewRemoteFleet composes a ShardedEngine over remote shard processes
// at the given addresses: the networked scatter-gather tier, with the
// same rank-merge (bitwise identical to a single engine when all
// shards answer) plus quorum degraded mode via cfg.Quorum.
func NewRemoteFleet(addrs []string, scfg RemoteShardConfig, cfg ShardedEngineConfig) (*ShardedEngine, error) {
	return remote.NewFleet(addrs, scfg, cfg)
}

// JoinWIN builds a Joiner from a WIN scoring function.
func JoinWIN(fn WIN) Joiner { return engine.WINJoiner(fn) }

// JoinMED builds a Joiner from a MED scoring function.
func JoinMED(fn MED) Joiner { return engine.MEDJoiner(fn) }

// JoinMAX builds a Joiner from an efficient MAX scoring function.
func JoinMAX(fn EfficientMAX) Joiner { return engine.MAXJoiner(fn) }

// JoinValidWIN is JoinWIN restricted to valid matchsets (Section VI).
func JoinValidWIN(fn WIN) Joiner { return engine.ValidWINJoiner(fn) }

// JoinValidMED is JoinMED restricted to valid matchsets.
func JoinValidMED(fn MED) Joiner { return engine.ValidMEDJoiner(fn) }

// JoinValidMAX is JoinMAX restricted to valid matchsets.
func JoinValidMAX(fn EfficientMAX) Joiner { return engine.ValidMAXJoiner(fn) }
