package bestjoin

import (
	"runtime"
	"sort"
	"sync"

	"bestjoin/internal/bylocation"
	"bestjoin/internal/join"
	"bestjoin/internal/match"
)

// This file holds the library's extensions beyond the paper's core:
// the type-anchored scoring model the paper's equation (5)
// generalizes, the score-bounded streaming MED the paper sketches as
// future work, top-k extraction, match-list serialization, and
// parallel batch processing.

// BestTypeAnchored computes the best matchset under the
// Chakrabarti-style model that MAX generalizes: the query has one
// designated type term, and the matchset is scored with the reference
// location fixed at the type term's match (rather than maximized over
// all locations). Time O(|Q|·Σ|Lj|). It panics if typeTerm is out of
// range.
func BestTypeAnchored(fn EfficientMAX, typeTerm int, lists MatchLists) Result {
	s, sc, ok := join.TypeAnchored(fn, typeTerm, lists)
	return Result{Set: s, Score: sc, OK: ok}
}

// StreamMED is the score-bounded single-pass variant of ByLocationMED
// (the "less blocking algorithms" direction of the paper's
// Section VII): given the promise that every individual match score is
// at most maxScore, each anchor's result is emitted as soon as no
// future match could change it, instead of after a second pass.
// Results are identical to ByLocationMED; only emission latency and
// held-back state differ.
func StreamMED(fn MED, maxScore float64, lists MatchLists, emit func(Anchored)) {
	bylocation.StreamMED(fn, maxScore, lists, emit)
}

// KBestWIN returns the k highest-scoring distinct matchsets under a
// WIN scoring function, best first — the k-best generalization of the
// paper's Algorithm 1, in O(k·2^|Q|·Σ|Lj|) time. Unlike TopKWIN (one
// result per anchor location), KBestWIN ranks over all matchsets of
// the document.
func KBestWIN(fn WIN, lists MatchLists, k int) []Result {
	inner := join.KBestWIN(fn, lists, k)
	out := make([]Result, len(inner))
	for i, r := range inner {
		out[i] = Result{Set: r.Set, Score: r.Score, OK: r.OK}
	}
	return out
}

// ValidByLocationWIN combines Sections VI and VII: per anchor, the
// best matchset that uses no token for two query terms at once.
// Anchors with no valid matchset are dropped.
func ValidByLocationWIN(fn WIN, lists MatchLists) []Anchored {
	return bylocation.Valid(func(ls MatchLists) []Anchored { return bylocation.WIN(fn, ls) }, lists)
}

// ValidByLocationMED is the valid-only variant of ByLocationMED.
func ValidByLocationMED(fn MED, lists MatchLists) []Anchored {
	return bylocation.Valid(func(ls MatchLists) []Anchored { return bylocation.MED(fn, ls) }, lists)
}

// ValidByLocationMAX is the valid-only variant of ByLocationMAX.
func ValidByLocationMAX(fn EfficientMAX, lists MatchLists) []Anchored {
	return bylocation.Valid(func(ls MatchLists) []Anchored { return bylocation.MAX(fn, ls) }, lists)
}

// TopKWIN returns the k highest-scoring locally-best matchsets under
// WIN, best first — the "k best distinct answers in this document"
// primitive for extraction pipelines. Fewer than k are returned when
// the document has fewer anchors.
func TopKWIN(fn WIN, lists MatchLists, k int) []Anchored {
	return topK(bylocation.WIN(fn, lists), k)
}

// TopKMED returns the k highest-scoring locally-best matchsets under
// MED, best first.
func TopKMED(fn MED, lists MatchLists, k int) []Anchored {
	return topK(bylocation.MED(fn, lists), k)
}

// TopKMAX returns the k highest-scoring per-location matchsets under
// MAX, best first.
func TopKMAX(fn EfficientMAX, lists MatchLists, k int) []Anchored {
	return topK(bylocation.MAX(fn, lists), k)
}

func topK(anchored []Anchored, k int) []Anchored {
	sort.SliceStable(anchored, func(i, j int) bool { return anchored[i].Score > anchored[j].Score })
	if k < len(anchored) {
		anchored = anchored[:k]
	}
	return anchored
}

// EncodeLists packs a join instance into the library's compact binary
// format (delta-encoded varint locations, raw float64 scores), for
// caching precomputed match lists.
func EncodeLists(lists MatchLists) []byte { return match.Encode(lists) }

// DecodeLists unpacks an EncodeLists buffer.
func DecodeLists(b []byte) (MatchLists, error) { return match.Decode(b) }

// Batch applies solve to every document's match lists concurrently and
// returns the results in input order. workers ≤ 0 uses GOMAXPROCS.
// solve must be safe for concurrent use (all the Best*/ByLocation*
// functions and scoring instances in this package are: they share no
// mutable state).
func Batch[T any](docs []MatchLists, workers int, solve func(MatchLists) T) []T {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]T, len(docs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = solve(docs[i])
			}
		}()
	}
	for i := range docs {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// RankedDocument is one entry of RankDocuments' output.
type RankedDocument struct {
	Doc    int // index into the input slice
	Result Result
}

// RankDocuments scores every document by its best matchset under solve
// and returns the documents that have one, ordered best first (ties in
// input order) — the document-ranking step of the paper's TREC
// experiment as a library primitive. Documents are solved in parallel.
func RankDocuments(docs []MatchLists, solve func(MatchLists) Result) []RankedDocument {
	results := Batch(docs, 0, solve)
	ranked := make([]RankedDocument, 0, len(results))
	for i, r := range results {
		if r.OK {
			ranked = append(ranked, RankedDocument{Doc: i, Result: r})
		}
	}
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].Result.Score > ranked[j].Result.Score })
	return ranked
}
