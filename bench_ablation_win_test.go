package bestjoin_test

// The WIN representation ablation promised in DESIGN.md: Algorithm 1
// must remember a best partial matchset per query-term subset. The
// shipped implementation extends persistent chains in O(1); the
// obvious alternative copies the partial matchset on every update,
// costing O(|Q|) per update and pushing the per-match work from
// O(2^|Q|) to O(|Q|·2^|Q|).

import (
	"math"
	"testing"

	"bestjoin"
	"bestjoin/internal/experiments"
	"bestjoin/internal/match"
	"bestjoin/internal/scorefn"
)

// winCopyBased is Algorithm 1 with slice-copied partial matchsets.
func winCopyBased(fn scorefn.WIN, lists match.Lists) (match.Set, float64, bool) {
	q := len(lists)
	if !lists.Complete() {
		return nil, 0, false
	}
	full := 1<<q - 1
	type state struct {
		set  match.Set // nil means ⊥
		gsum float64
		lmin int
	}
	states := make([]state, 1<<q)
	var best match.Set
	bestScore := math.Inf(-1)
	found := false
	match.Merge(lists, func(ev match.Event) bool {
		j, m := ev.Term, ev.M
		g := fn.G(j, m.Score)
		l := m.Loc
		bit := 1 << j
		rest := full &^ bit
		for s := rest; ; s = (s - 1) & rest {
			st := &states[s|bit]
			if s == 0 {
				if st.set == nil || fn.F(st.gsum, float64(l-st.lmin)) < fn.F(g, 0) {
					set := make(match.Set, q)
					set[j] = m
					st.set, st.gsum, st.lmin = set, g, l
				}
			} else if sub := &states[s]; sub.set != nil {
				cand := sub.gsum + g
				if st.set == nil || fn.F(st.gsum, float64(l-st.lmin)) < fn.F(cand, float64(l-sub.lmin)) {
					set := sub.set.Clone() // the O(|Q|) copy the chains avoid
					set[j] = m
					st.set, st.gsum, st.lmin = set, cand, sub.lmin
				}
			}
			if s == 0 {
				break
			}
		}
		if fs := &states[full]; fs.set != nil {
			if sc := fn.F(fs.gsum, float64(l-fs.lmin)); !found || sc > bestScore {
				best, bestScore, found = fs.set, sc, true
			}
		}
		return true
	})
	if !found {
		return nil, 0, false
	}
	return best.Clone(), bestScore, true
}

// The copy-based variant must agree with the shipped one before its
// timing means anything.
func TestWINCopyBasedAgrees(t *testing.T) {
	fn := scorefn.ExpWIN{Alpha: 0.1}
	for _, doc := range experiments.SynthWorkload(experiments.Quick(), 5, 30, 0, 0)[:20] {
		want := bestjoin.BestWIN(fn, doc)
		_, score, ok := winCopyBased(fn, doc)
		if ok != want.OK || (ok && math.Abs(score-want.Score) > 1e-9) {
			t.Fatalf("copy-based WIN %v/%v != chain-based %v/%v", score, ok, want.Score, want.OK)
		}
	}
}

// BenchmarkAblationWINChains compares the persistent-chain partial
// matchsets against copy-based ones, at a term count where the 2^|Q|
// factor makes the per-update copy visible.
func BenchmarkAblationWINChains(b *testing.B) {
	docs := experiments.SynthWorkload(benchOptions(), 6, 40, 0, 0)
	fn := bestjoin.ExpWIN{Alpha: 0.1}
	b.Run("chains", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, doc := range docs {
				bestjoin.BestWIN(fn, doc)
			}
		}
	})
	b.Run("copies", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, doc := range docs {
				winCopyBased(fn, doc)
			}
		}
	})
}
