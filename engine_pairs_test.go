package bestjoin_test

// Root-level acceptance for the auxiliary pair-index tier: pair lists
// must be invisible through every composition of the public surface —
// single engine, doc-partitioned sharded engine (where Partition
// splits each pair list by shard), AND / OR / m-of-n modes — and the
// speedup must be measurable (BenchmarkEnginePairs, recorded in
// BENCH_engine.json by scripts/benchjson.sh).

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"bestjoin"
)

const pairTestDocs = 400

var (
	pairCorpusOnce sync.Once
	pairCompact    *bestjoin.CompactIndex
	pairBuilt      int
)

func pairSpec() bestjoin.JoinSpec {
	return bestjoin.JoinSpec{Family: "win", Alpha: 0.1, Valid: true}
}

func pairConcepts() []bestjoin.Concept {
	return []bestjoin.Concept{
		{"lenovo": 1, "dell": 0.9, "hewlett": 0.8},
		{"nba": 1, "olympics": 0.9, "basketball": 0.7},
		{"partnership": 1, "alliance": 0.8, "deal": 0.6},
	}
}

// pairTestIndex builds (once) a planted synthetic corpus with every
// pair list among the three query concepts registered for pairSpec.
func pairTestIndex(t testing.TB) *bestjoin.CompactIndex {
	pairCorpusOnce.Do(func() {
		rng := rand.New(rand.NewSource(7))
		filler := strings.Fields("quartz ribbon saddle timber umbrella violet walnut yarn " +
			"zeppelin bottle curtain dolphin ember flute glacier helmet ivory jacket kernel lantern")
		planted := [][]string{
			{"lenovo", "dell", "hewlett"},
			{"nba", "olympics", "basketball"},
			{"partnership", "alliance", "deal"},
		}
		ix := bestjoin.NewIndex()
		for d := 0; d < pairTestDocs; d++ {
			words := make([]string, 120)
			for i := range words {
				words[i] = filler[rng.Intn(len(filler))]
			}
			for _, group := range planted {
				if rng.Intn(10) < 7 {
					for occ := 0; occ < 2+rng.Intn(3); occ++ {
						words[rng.Intn(len(words))] = group[rng.Intn(len(group))]
					}
				}
			}
			ix.AddText(d, strings.Join(words, " "))
		}
		pairCompact = ix.Compact()
		var err error
		pairBuilt, err = bestjoin.BuildPairIndex(pairCompact, pairConcepts(), pairSpec(), 0)
		if err != nil {
			panic(err)
		}
	})
	if pairBuilt != 3 {
		t.Fatalf("BuildPairIndex registered %d pairs, want 3", pairBuilt)
	}
	return pairCompact
}

// assertSameDocs compares ranked results. Candidates is compared only
// when wantCand is set: sharded ranked unions legitimately skip
// different candidate counts (each shard's WAND runs its own floor),
// while the returned ranking must still be identical.
func assertSameDocs(t *testing.T, label string, got, want *bestjoin.EngineResult, wantCand bool) {
	t.Helper()
	if got.Partial != want.Partial {
		t.Fatalf("%s: Partial %v vs %v", label, got.Partial, want.Partial)
	}
	if wantCand && got.Candidates != want.Candidates {
		t.Fatalf("%s: Candidates %d vs %d", label, got.Candidates, want.Candidates)
	}
	if len(got.Docs) != len(want.Docs) {
		t.Fatalf("%s: %d docs vs %d", label, len(got.Docs), len(want.Docs))
	}
	for i := range got.Docs {
		g, w := got.Docs[i], want.Docs[i]
		if g.Doc != w.Doc || g.Score != w.Score {
			t.Fatalf("%s: rank %d (%d, %v) vs (%d, %v)", label, i, g.Doc, g.Score, w.Doc, w.Score)
		}
		if len(g.Set) != len(w.Set) {
			t.Fatalf("%s: rank %d matchset sizes differ", label, i)
		}
		for j := range g.Set {
			if g.Set[j] != w.Set[j] {
				t.Fatalf("%s: rank %d matchset %v vs %v", label, i, g.Set, w.Set)
			}
		}
	}
}

// TestShardedPairDifferential pins the composition contract: for
// two-term (pair-served), three-term (pair-tightened bounds), ranked
// union, and m-of-n queries, a pair-enabled engine — single or
// sharded 2/4 ways — answers identically to the pair-disabled single
// engine.
func TestShardedPairDifferential(t *testing.T) {
	c := pairTestIndex(t)
	concepts := pairConcepts()
	queries := map[string]bestjoin.EngineQuery{
		"two-term":   {Concepts: concepts[:2], Spec: pairSpec(), K: 7},
		"swapped":    {Concepts: []bestjoin.Concept{concepts[1], concepts[0]}, Spec: pairSpec(), K: 7},
		"three-term": {Concepts: concepts, Spec: pairSpec(), K: 5},
		"union":      {Concepts: concepts[:2], Spec: pairSpec(), K: 7, Mode: bestjoin.ModeOR},
		"m-of-n":     {Concepts: concepts, Spec: pairSpec(), K: 5, Mode: bestjoin.ModeOR, MinMatch: 2},
	}
	base := bestjoin.NewEngine(c, bestjoin.EngineConfig{DisablePairIndex: true})
	for name, q := range queries {
		want, err := base.Search(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		single := bestjoin.NewEngine(c, bestjoin.EngineConfig{})
		got, err := single.Search(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		assertSameDocs(t, name+"/single", got, want, true)
		if name == "two-term" || name == "swapped" {
			if st := single.Stats(); st.PairServed != 1 {
				t.Fatalf("%s: single engine not pair-served: %+v", name, st)
			}
		}
		for _, shards := range []int{2, 4} {
			se, err := bestjoin.NewShardedEngine(c, shards, bestjoin.EngineConfig{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := se.Search(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			assertSameDocs(t, name+"/sharded", got, want, q.Mode != bestjoin.ModeOR)
			if name == "two-term" {
				// The shard rollup must surface the children's pair
				// counters: every shard holding part of the pair's doc
				// set served its slice off the partitioned pair list.
				if st := se.Stats(); st.PairServed == 0 || st.PairHits < st.PairServed {
					t.Fatalf("shards=%d: rollup lost pair counters: PairHits=%d PairServed=%d",
						shards, st.PairHits, st.PairServed)
				}
			}
		}
	}
}

// BenchmarkEnginePairs measures the pair tier's two wins on the same
// corpus: "served" answers a two-term query off the precomputed list
// (vs the kernel path on a pair-disabled engine), and "bounds" runs
// the three-term query whose per-candidate caps the pair lists
// tighten. Identical top-k is asserted once up front; pairhits/op and
// pairboundprunes/op land in BENCH_engine.json.
func BenchmarkEnginePairs(b *testing.B) {
	c := pairTestIndex(b)
	q2 := bestjoin.EngineQuery{Concepts: pairConcepts()[:2], Spec: pairSpec(), K: 10}
	q3 := bestjoin.EngineQuery{Concepts: pairConcepts(), Spec: pairSpec(), K: 10}

	for _, q := range []bestjoin.EngineQuery{q2, q3} {
		pe := bestjoin.NewEngine(c, bestjoin.EngineConfig{})
		ke := bestjoin.NewEngine(c, bestjoin.EngineConfig{DisablePairIndex: true})
		rp, err := pe.Search(context.Background(), q)
		if err != nil {
			b.Fatal(err)
		}
		rk, err := ke.Search(context.Background(), q)
		if err != nil {
			b.Fatal(err)
		}
		if len(rp.Docs) != len(rk.Docs) {
			b.Fatalf("pair returned %d docs, kernel %d", len(rp.Docs), len(rk.Docs))
		}
		for i := range rp.Docs {
			if rp.Docs[i].Doc != rk.Docs[i].Doc || rp.Docs[i].Score != rk.Docs[i].Score {
				b.Fatalf("rank %d differs: pair (%d, %v) vs kernel (%d, %v)", i,
					rp.Docs[i].Doc, rp.Docs[i].Score, rk.Docs[i].Doc, rk.Docs[i].Score)
			}
		}
	}

	run := func(b *testing.B, cfg bestjoin.EngineConfig, q bestjoin.EngineQuery) {
		e := bestjoin.NewEngine(c, cfg)
		if _, err := e.Search(context.Background(), q); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Search(context.Background(), q); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := e.Stats()
		b.ReportMetric(float64(st.PairHits)/float64(b.N), "pairhits/op")
		b.ReportMetric(float64(st.PairBoundPrunes)/float64(b.N), "pairboundprunes/op")
	}

	b.Run("served", func(b *testing.B) {
		run(b, bestjoin.EngineConfig{}, q2)
		// The arm is vacuous unless queries actually hit the pair list.
	})
	b.Run("kernel", func(b *testing.B) {
		run(b, bestjoin.EngineConfig{DisablePairIndex: true, CacheLists: 1 << 14}, q2)
	})
	b.Run("bounds", func(b *testing.B) {
		run(b, bestjoin.EngineConfig{}, q3)
	})
	b.Run("nobounds", func(b *testing.B) {
		run(b, bestjoin.EngineConfig{DisablePairIndex: true, CacheLists: 1 << 14}, q3)
	})
}
