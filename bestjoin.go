package bestjoin

import (
	"bestjoin/internal/bylocation"
	"bestjoin/internal/dedup"
	"bestjoin/internal/join"
	"bestjoin/internal/match"
	"bestjoin/internal/naive"
	"bestjoin/internal/scorefn"
)

// Match is one occurrence of a query term: a token location within the
// document and a score measuring match quality (higher is better).
type Match = match.Match

// MatchList holds all matches of one query term, sorted by location.
type MatchList = match.List

// MatchLists is a full join instance: one list per query term.
type MatchLists = match.Lists

// Matchset is one match per query term; Matchset[j] answers term j.
type Matchset = match.Set

// Anchored is a locally-best matchset for one anchor location, as
// returned by the ByLocation functions.
type Anchored = bylocation.Anchored

// Result is the outcome of a best-join: the best matchset and its
// score. OK is false when no matchset exists (some term has no
// matches, or — for the BestValid variants — every matchset reuses a
// token).
type Result struct {
	Set   Matchset
	Score float64
	OK    bool
}

// WIN is a window-length scoring function (paper Definition 3); see
// ExpWIN and LinearWIN for ready-made instances, and CheckWIN for
// validating custom ones.
type WIN = scorefn.WIN

// MED is a distance-from-median scoring function (Definition 5).
type MED = scorefn.MED

// MAX is a maximize-over-location scoring function (Definition 7).
type MAX = scorefn.MAX

// EfficientMAX marks MAX functions with the at-most-one-crossing and
// maximized-at-match properties (Definition 8) required by BestMAX.
type EfficientMAX = scorefn.EfficientMAX

// ExpWIN is (Π scores)·e^(−α·window) — the paper's equation (1).
type ExpWIN = scorefn.ExpWIN

// LinearWIN is Σ(score/Scale) − window — the paper's TREC setting.
type LinearWIN = scorefn.LinearWIN

// ExpMED is Π(score·e^(−α·|loc−median|)) — the paper's equation (3).
type ExpMED = scorefn.ExpMED

// LinearMED is Σ(score/Scale − |loc−median|) — the paper's TREC
// setting.
type LinearMED = scorefn.LinearMED

// ProdMAX is max over l of Π(score·e^(−α·|loc−l|)) — equation (4).
type ProdMAX = scorefn.ProdMAX

// SumMAX is max over l of Σ(score·e^(−α·|loc−l|)) — equation (5), the
// MAX function of the paper's experiments.
type SumMAX = scorefn.SumMAX

// BestWIN returns an overall best matchset under a WIN scoring
// function, in O(2^|Q|·Σ|Lj|) time (the paper's Algorithm 1). Lists
// must be sorted by location. It panics if the query has more than 24
// terms.
func BestWIN(fn WIN, lists MatchLists) Result {
	s, sc, ok := join.WIN(fn, lists)
	return Result{Set: s, Score: sc, OK: ok}
}

// BestMED returns an overall best matchset under a MED scoring
// function, in O(|Q|·Σ|Lj|) time (the paper's Algorithm 2).
func BestMED(fn MED, lists MatchLists) Result {
	s, sc, ok := join.MED(fn, lists)
	return Result{Set: s, Score: sc, OK: ok}
}

// BestMAX returns an overall best matchset under an efficient MAX
// scoring function, in O(|Q|·Σ|Lj|) time (the paper's specialized
// Section V algorithm).
func BestMAX(fn EfficientMAX, lists MatchLists) Result {
	s, sc, ok := join.MAX(fn, lists)
	return Result{Set: s, Score: sc, OK: ok}
}

// BestMAXGeneral returns an overall best matchset under any MAX
// scoring function via the general envelope approach (Lemma 2). Its
// cost grows with the location range, not just the list sizes; prefer
// BestMAX whenever the scoring function qualifies.
func BestMAXGeneral(fn MAX, lists MatchLists) Result {
	s, sc, ok := join.MAXGeneral(fn, lists)
	return Result{Set: s, Score: sc, OK: ok}
}

// JoinKernel is a reusable best-join evaluator: it owns its algorithm's
// working state and reuses it across Reset/Join cycles, so a caller
// evaluating many instances in sequence (the engine's
// document-at-a-time workers) performs no per-instance allocation. The
// Set returned by Join aliases kernel memory and is valid only until
// the next Reset or Join; Clone it to keep it. Kernels are not safe
// for concurrent use — build one per goroutine.
type JoinKernel = join.Kernel

// NewWINKernel returns a reusable WIN kernel (Algorithm 1); BestWIN is
// its one-shot form.
func NewWINKernel(fn WIN) JoinKernel { return join.NewWINKernel(fn) }

// NewMEDKernel returns a reusable MED kernel (Algorithm 2); BestMED is
// its one-shot form.
func NewMEDKernel(fn MED) JoinKernel { return join.NewMEDKernel(fn) }

// NewMAXKernel returns a reusable efficient-MAX kernel (Section V);
// BestMAX is its one-shot form.
func NewMAXKernel(fn EfficientMAX) JoinKernel { return join.NewMAXKernel(fn) }

// NewValidKernel layers Section VI duplicate avoidance over any
// kernel, reusing the duplicate-search scratch as well: the kernel
// form of the BestValid functions.
func NewValidKernel(inner JoinKernel) JoinKernel { return dedup.Wrap(inner) }

// JoinKernelFunc adapts a one-shot join function into a JoinKernel,
// for plugging custom joiners into kernel-shaped APIs (KernelFactory).
func JoinKernelFunc(fn func(MatchLists) (Matchset, float64, bool)) JoinKernel {
	return join.KernelFunc(fn)
}

// Score evaluates a matchset under each family's definition, for
// callers that need to re-score or compare sets.
func ScoreWIN(fn WIN, s Matchset) float64 { return scorefn.ScoreWIN(fn, s) }

// ScoreMED evaluates a matchset under a MED scoring function.
func ScoreMED(fn MED, s Matchset) float64 { return scorefn.ScoreMED(fn, s) }

// ScoreMAX evaluates a matchset under a maximized-at-match MAX scoring
// function, returning the score and the maximizing anchor location.
func ScoreMAX(fn MAX, s Matchset) (score float64, anchor int) {
	return scorefn.ScoreMAX(fn, s)
}

// BestValidWIN is BestWIN restricted to valid matchsets — no single
// token (location) may match two query terms at once (the paper's
// Section VI). invocations reports how many times the underlying
// duplicate-unaware algorithm ran.
func BestValidWIN(fn WIN, lists MatchLists) (res Result, invocations int) {
	r := dedup.Best(func(ls MatchLists) (Matchset, float64, bool) { return join.WIN(fn, ls) }, lists)
	return Result{Set: r.Set, Score: r.Score, OK: r.OK}, r.Invocations
}

// BestValidMED is BestMED restricted to valid matchsets.
func BestValidMED(fn MED, lists MatchLists) (res Result, invocations int) {
	r := dedup.Best(func(ls MatchLists) (Matchset, float64, bool) { return join.MED(fn, ls) }, lists)
	return Result{Set: r.Set, Score: r.Score, OK: r.OK}, r.Invocations
}

// BestValidMAX is BestMAX restricted to valid matchsets.
func BestValidMAX(fn EfficientMAX, lists MatchLists) (res Result, invocations int) {
	r := dedup.Best(func(ls MatchLists) (Matchset, float64, bool) { return join.MAX(fn, ls) }, lists)
	return Result{Set: r.Set, Score: r.Score, OK: r.OK}, r.Invocations
}

// ByLocationWIN returns, in increasing anchor order, a best matchset
// per anchor location, where a WIN matchset anchors at its largest
// match location (the paper's Section VII). Use it to extract all
// locally-good matchsets from a document rather than a single winner.
func ByLocationWIN(fn WIN, lists MatchLists) []Anchored {
	return bylocation.WIN(fn, lists)
}

// StreamWIN is ByLocationWIN in streaming form: emit is called for
// each anchor as soon as all matches at that location have been
// processed, using state independent of the input size.
func StreamWIN(fn WIN, lists MatchLists, emit func(Anchored)) {
	bylocation.WINStream(fn, lists, emit)
}

// ByLocationMED returns a best matchset per anchor (median) location,
// in O(|Q|²·Σ|Lj|) time.
func ByLocationMED(fn MED, lists MatchLists) []Anchored {
	return bylocation.MED(fn, lists)
}

// ByLocationMAX returns, for every match location l, the matchset of
// per-term dominating matches at l with its score at l — the local
// evidence profile of the document under a MAX scoring function.
func ByLocationMAX(fn EfficientMAX, lists MatchLists) []Anchored {
	return bylocation.MAX(fn, lists)
}

// NaiveWIN, NaiveMED and NaiveMAX are the exhaustive cross-product
// baselines (Θ(|Q|·Π|Lj|)). They exist for benchmarking and testing;
// production code should use the Best functions.
func NaiveWIN(fn WIN, lists MatchLists) Result {
	s, sc, ok := naive.WIN(fn, lists)
	return Result{Set: s, Score: sc, OK: ok}
}

// NaiveMED is the exhaustive MED baseline.
func NaiveMED(fn MED, lists MatchLists) Result {
	s, sc, ok := naive.MED(fn, lists)
	return Result{Set: s, Score: sc, OK: ok}
}

// NaiveMAX is the exhaustive MAX baseline.
func NaiveMAX(fn MAX, lists MatchLists) Result {
	s, sc, ok := naive.MAX(fn, lists)
	return Result{Set: s, Score: sc, OK: ok}
}
