// Quickstart: the weighted proximity best-join API in one file.
//
// We hand-build the match lists of the paper's Figure 1 document for
// the query {"PC maker", "sports", "partnership"} and run the three
// scoring families, the duplicate-avoiding variant, and the
// by-location (extraction) variant.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"bestjoin"
)

func main() {
	// One match list per query term: (token location, match score),
	// sorted by location. In a real system these come from matchers or
	// an inverted index (see the other examples); here they are the
	// hand-annotated matches of the paper's Figure 1 article.
	lists := bestjoin.MatchLists{
		{ // "PC maker": Lenovo, laptop maker, Lenovo, Dell, Hewlett-Packard
			{Loc: 8, Score: 0.9}, {Loc: 33, Score: 0.8}, {Loc: 70, Score: 0.9},
			{Loc: 80, Score: 0.9}, {Loc: 83, Score: 0.9},
		},
		{ // "sports": NBA, NBA, Olympic Games, Winter Olympics, Summer Olympics
			{Loc: 16, Score: 0.8}, {Loc: 24, Score: 0.8}, {Loc: 44, Score: 0.8},
			{Loc: 55, Score: 0.7}, {Loc: 64, Score: 0.7},
		},
		{ // "partnership": deal, partner, partnership
			{Loc: 5, Score: 0.7}, {Loc: 14, Score: 1.0}, {Loc: 42, Score: 1.0},
		},
	}

	// The three scoring families. WIN penalizes the enclosing window;
	// MED penalizes distance from the median location; MAX scores at
	// the best anchor location.
	win := bestjoin.BestWIN(bestjoin.ExpWIN{Alpha: 0.1}, lists)
	med := bestjoin.BestMED(bestjoin.ExpMED{Alpha: 0.1}, lists)
	max := bestjoin.BestMAX(bestjoin.SumMAX{Alpha: 0.1}, lists)
	fmt.Printf("WIN best: %v  score=%.4f\n", win.Set, win.Score)
	fmt.Printf("MED best: %v  score=%.4f\n", med.Set, med.Score)
	fmt.Printf("MAX best: %v  score=%.4f\n", max.Set, max.Score)

	// Duplicate avoidance (Section VI): guarantee no token answers two
	// query terms at once. Here the matchsets are already valid, so a
	// single solver run suffices.
	valid, runs := bestjoin.BestValidMED(bestjoin.ExpMED{Alpha: 0.1}, lists)
	fmt.Printf("valid MED best: %v  (%d solver runs)\n", valid.Set, runs)

	// By-location (Section VII): one locally-best matchset per anchor,
	// for extracting every good answer in the document. Filter by
	// score to keep the good ones; this document has two clusters
	// (Lenovo/NBA/partner and laptop-maker/Olympics/partnership).
	fmt.Println("anchors with score above 0.2:")
	for _, a := range bestjoin.ByLocationMED(bestjoin.ExpMED{Alpha: 0.1}, lists) {
		if a.Score > 0.2 {
			fmt.Printf("  anchor %3d: %v  score=%.4f\n", a.Anchor, a.Set, a.Score)
		}
	}

	// The naive baseline agrees on the optimum — at cross-product
	// cost. It exists for benchmarking.
	naive := bestjoin.NaiveMED(bestjoin.ExpMED{Alpha: 0.1}, lists)
	fmt.Printf("naive MED score matches: %v\n", naive.Score == med.Score)
}
