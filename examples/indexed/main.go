// Indexed retrieval: deriving match lists from a precomputed inverted
// index instead of scanning documents (footnote 1 of the paper: "Cheng
// et al. propose precomputing inverted lists for entity types.
// Alternatively, a match list for a general concept (e.g., 'PC maker')
// can be obtained by merging inverted lists of specific terms").
//
// The example indexes a small news corpus, compacts the index into its
// compressed persistent form, derives per-concept match lists from the
// postings, and ranks the documents by their best valid matchset for
// {"PC maker", "sports", "partnership"}.
//
//	go run ./examples/indexed
package main

import (
	"fmt"
	"log"

	"bestjoin"
	"bestjoin/internal/index"
	"bestjoin/internal/lexicon"
)

var corpus = []string{
	// 0: the paper's Figure 1 article — the document we hope ranks first.
	`As part of the new deal, Lenovo will become the official PC partner
	 of the NBA, and it will be marketing its NBA affiliation in the US and
	 in China. The laptop maker has a similar marketing and technology
	 partnership with the Olympic Games.`,
	// 1: PC maker, no sports.
	`Dell announced quarterly earnings today. The PC maker said laptop
	 shipments grew, while desktop sales were flat.`,
	// 2: sports, no PC maker.
	`The NBA finals drew record audiences, and the basketball league
	 announced a new broadcast deal with the network.`,
	// 3: all three concepts, but scattered far apart.
	`Hewlett-Packard opened a research lab in the valley this week, with
	 a ribbon cutting attended by local officials, students, engineers and
	 a marching band that played for almost an hour in the courtyard.
	 Elsewhere, the Olympics committee met in Lausanne to review venue
	 construction schedules, transport plans, budgets, volunteer staffing
	 and the endless list of ceremonial details that every host city
	 inherits. In entirely unrelated financial news, a partnership between
	 two regional banks was announced late on Friday after months of
	 negotiation over branch networks, staffing and the combined balance
	 sheet that analysts had questioned repeatedly all year.`,
	// 4: nothing relevant.
	`The museum opened a new exhibition of renaissance ceramics from
	 Jingdezhen, drawing visitors from across the region.`,
}

func main() {
	// Build, compact, serialize and reload the index — the round trip
	// a production system would make through its storage layer.
	ix := index.New()
	for i, doc := range corpus {
		ix.AddText(i, doc)
	}
	blob := ix.Compact().Marshal()
	compact, err := index.LoadCompact(blob)
	if err != nil {
		log.Fatalf("reload: %v", err)
	}
	fmt.Printf("indexed %d documents; compressed index is %d bytes\n\n", compact.Docs(), len(blob))

	// Concepts: entity lists for "PC maker" and "sports" (with scores
	// reflecting confidence), and a lexical neighborhood for
	// "partnership" derived from the built-in graph.
	g := lexicon.Builtin()
	concepts := []index.Concept{
		{"lenovo": 1, "dell": 1, "hewlett": 1, "ibm": 0.9, "pc": 0.4},
		{"nba": 1, "olympics": 0.9, "basketball": 0.8, "football": 0.8},
		index.ConceptFromGraph(g.Neighborhood("partnership", 2), lexicon.ScorePerEdge),
	}
	names := []string{"PC maker", "sports", "partnership"}

	// Derive per-document match lists from postings and rank.
	docs := make([]bestjoin.MatchLists, compact.Docs())
	for d := range docs {
		docs[d] = compact.QueryLists(d, concepts)
	}
	fn := bestjoin.ExpMED{Alpha: 0.1}
	ranked := bestjoin.RankDocuments(docs, func(ls bestjoin.MatchLists) bestjoin.Result {
		res, _ := bestjoin.BestValidMED(fn, ls)
		return res
	})

	fmt.Println("documents ranked by best matchset score:")
	for rank, r := range ranked {
		fmt.Printf("#%d doc %d  score %.4f\n", rank+1, r.Doc, r.Result.Score)
		doc := bestjoin.NewDocument(corpus[r.Doc])
		for j, m := range r.Result.Set {
			fmt.Printf("    %-12s -> %q at token %d (score %.2f)\n",
				names[j], doc.Tokens[m.Loc].Word, m.Loc, m.Score)
		}
	}
	fmt.Printf("\n%d of %d documents matched all three concepts\n", len(ranked), compact.Docs())
}
