// Information extraction from call-for-papers messages — the paper's
// DBWorld experiment end to end. For each synthesized CFP email we run
// the query {conference|workshop, date, place} and read the meeting's
// date and venue off the best matchset, comparing against the planted
// ground truth and against the naive take-the-first-date heuristic
// that the paper's footnote 12 shows failing on deadline-extension
// announcements.
//
//	go run ./examples/cfp [-msgs 25]
package main

import (
	"flag"
	"fmt"

	"bestjoin"
	"bestjoin/internal/corpus"
)

func main() {
	msgs := flag.Int("msgs", 25, "CFP messages to synthesize")
	flag.Parse()

	lex := bestjoin.BuiltinLexicon()
	gz := bestjoin.BuiltinGazetteer()
	cfps := corpus.GenerateDBWorld(*msgs, *msgs*7/25, 2024)

	// The paper's query: the first term unions the conference and
	// workshop lexical matchers; date and place use the dedicated
	// matchers (months + years 1990–2010; gazetteer + "place"
	// neighbours).
	query := []bestjoin.Matcher{
		bestjoin.NewUnionMatcher("conference|workshop",
			bestjoin.NewLexicalMatcher("conference", lex),
			bestjoin.NewLexicalMatcher("workshop", lex)),
		bestjoin.NewDateMatcher(),
		bestjoin.NewPlaceMatcher(gz, lex),
	}

	fn := bestjoin.LinearWIN{Scale: 0.3} // the paper's footnote-9 WIN setting
	correct, heuristicCorrect := 0, 0
	for _, cfp := range cfps {
		doc := bestjoin.NewDocument(cfp.Text)
		lists := doc.MatchQuery(query...)
		res, _ := bestjoin.BestValidWIN(fn, lists)
		if !res.OK {
			fmt.Printf("msg %2d: no matchset\n", cfp.ID)
			continue
		}
		date, place := res.Set[1].Loc, res.Set[2].Loc
		ok := near(date, cfp.MeetingDatePos) && near(place, cfp.MeetingPlacePos)
		if ok {
			correct++
		}
		// The baseline heuristic: just take the first date.
		if len(lists[1]) > 0 && near(lists[1][0].Loc, cfp.MeetingDatePos) {
			heuristicCorrect++
		}
		tag := ""
		if cfp.Extension {
			tag = " [deadline-extension msg]"
		}
		status := "MISS"
		if ok {
			status = "ok"
		}
		fmt.Printf("msg %2d: %-4s meeting %q at %q%s\n",
			cfp.ID, status, doc.Tokens[date].Word, doc.Tokens[place].Word, tag)
	}
	fmt.Printf("\nbest-join extraction: %d/%d correct\n", correct, len(cfps))
	fmt.Printf("first-date heuristic: %d/%d correct (fails on extensions)\n", heuristicCorrect, len(cfps))
}

func near(a, b int) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 2
}
