// Extracting all good matchsets from one document with the
// best-matchset-by-location problem (the paper's Section VII). The
// Figure 1 article mentions two PC-maker/sports partnerships —
// Lenovo↔NBA and Lenovo↔Olympics; a single overall best-join returns
// only one of them, while the by-location join surfaces both as
// locally-best anchors that a score threshold keeps.
//
//	go run ./examples/extraction
package main

import (
	"fmt"
	"strings"

	"bestjoin"
)

const article = `As part of the new deal, Lenovo will become the official PC
partner of the NBA, and it will be marketing its NBA affiliation in the US
and in China. The laptop maker has a similar marketing and technology
partnership with the Olympic Games. It provided all the computers for the
Winter Olympics in Turin, Italy, and will also provide equipment for the
Summer Olympics in Beijing in 2008. Lenovo competes in a tough market against
players such as Dell and Hewlett-Packard. The Chinese PC maker, which bought
the PC division of IBM, continues to expand.`

func main() {
	doc := bestjoin.NewDocument(article)
	lex := bestjoin.BuiltinLexicon()

	// "PC maker" as an entity concept (footnote 1 of the paper) plus
	// the "laptop maker" paraphrase; "sports" and "partnership" go
	// through the lexical graph.
	lists := doc.MatchQuery(
		bestjoin.NewUnionMatcher("PC maker",
			bestjoin.NewExactMatcher("lenovo"),
			bestjoin.NewExactMatcher("dell"),
			bestjoin.NewExactMatcher("hewlett"),
			bestjoin.NewPhraseMatcher("laptop maker", []string{"laptop", "maker"}, "", 0)),
		bestjoin.NewLexicalMatcher("sports", lex),
		bestjoin.NewLexicalMatcher("partnership", lex),
	)

	fn := bestjoin.ExpMED{Alpha: 0.1}

	// One overall winner…
	best := bestjoin.BestMED(fn, lists)
	fmt.Println("overall best matchset:")
	fmt.Printf("  %s (score %.4f)\n\n", render(doc, best.Set), best.Score)

	// …but the document holds more than one good answer. Keep every
	// anchor scoring at least 40% of the best.
	fmt.Println("all locally-best matchsets above threshold:")
	threshold := 0.4 * best.Score
	for _, a := range bestjoin.ByLocationMED(fn, lists) {
		if a.Score < threshold {
			continue
		}
		fmt.Printf("  anchor %3d (score %.4f): %s\n", a.Anchor, a.Score, render(doc, a.Set))
	}
}

func render(doc bestjoin.Document, set bestjoin.Matchset) string {
	words := make([]string, len(set))
	for j, m := range set {
		words[j] = fmt.Sprintf("%q@%d", doc.Tokens[m.Loc].Word, m.Loc)
	}
	return strings.Join(words, " + ")
}
