// Question answering over a simulated TREC topic (the paper's
// Section VIII TREC experiment, end to end): synthesize 200 documents
// for "Leaning Tower of Pisa began to be built in what year?", build
// match lists with the lexical matchers, rank the documents by their
// best matchset score, and print the top-ranked answers in context.
//
//	go run ./examples/qa [-query Q1..Q7] [-docs 200]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"bestjoin"
	"bestjoin/internal/corpus"
)

func main() {
	var (
		queryID = flag.String("query", "Q1", "TREC query id (Q1..Q7)")
		docs    = flag.Int("docs", 200, "documents to synthesize")
	)
	flag.Parse()

	var query corpus.TRECQuery
	found := false
	for _, q := range corpus.TRECQueries() {
		if q.ID == *queryID {
			query, found = q, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "qa: unknown query %q\n", *queryID)
		os.Exit(2)
	}
	fmt.Printf("question: %s\n", query.Question)
	fmt.Printf("query terms: %s\n\n", strings.Join(query.Terms, ", "))

	// Synthesize the topic and match every document. The lexicon
	// plays WordNet's role: matches score 1 − 0.3·(graph distance).
	ds := corpus.GenerateTREC(query, *docs, 42)
	lex := bestjoin.BuiltinLexicon()
	gz := bestjoin.BuiltinGazetteer()
	matchers := query.Matchers(lex, gz)

	type ranked struct {
		doc   int
		score float64
		set   bestjoin.Matchset
		toks  []bestjoin.Token
	}
	var results []ranked
	fn := bestjoin.ExpMED{Alpha: 0.1}
	for i, d := range ds.Docs {
		doc := bestjoin.NewDocument(d.Text)
		lists := doc.MatchQuery(matchers...)
		if res, _ := bestjoin.BestValidMED(fn, lists); res.OK {
			results = append(results, ranked{doc: i, score: res.Score, set: res.Set, toks: doc.Tokens})
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].score > results[j].score })

	fmt.Printf("%d of %d documents have a full matchset; top 3:\n\n", len(results), *docs)
	for rank, r := range results {
		if rank == 3 {
			break
		}
		marker := ""
		if r.doc == ds.AnswerDoc {
			marker = "  <-- planted answer document"
		}
		fmt.Printf("#%d doc %d  score %.4f%s\n", rank+1, r.doc, r.score, marker)
		fmt.Printf("   matches: %s\n", describe(r.set, r.toks, query.Terms))
		fmt.Printf("   context: …%s…\n\n", context(r.set, r.toks))
	}
}

func describe(set bestjoin.Matchset, toks []bestjoin.Token, terms []string) string {
	parts := make([]string, len(set))
	for j, m := range set {
		parts[j] = fmt.Sprintf("%s=%q@%d", terms[j], toks[m.Loc].Word, m.Loc)
	}
	return strings.Join(parts, "  ")
}

// context prints the token window spanned by the matchset, padded by
// two tokens on each side.
func context(set bestjoin.Matchset, toks []bestjoin.Token) string {
	lo, hi := set.MinLoc()-2, set.MaxLoc()+2
	if lo < 0 {
		lo = 0
	}
	if hi >= len(toks) {
		hi = len(toks) - 1
	}
	if hi-lo > 40 {
		hi = lo + 40
	}
	words := make([]string, 0, hi-lo+1)
	for _, t := range toks[lo : hi+1] {
		words = append(words, t.Word)
	}
	return strings.Join(words, " ")
}
