// The concurrent indexed query engine end-to-end: index a corpus,
// compact it, and serve multi-concept queries document-at-a-time with
// worker-pool joins, an LRU match-list cache, deadlines, and
// observability — the full "query + corpus → ranked answers" path.
//
// The walkthrough runs the same query cold and cached (the second run
// decodes no postings), then demonstrates a deadline-bounded query
// returning its best-so-far answer marked Partial, and finally prints
// the engine's stats snapshot.
//
//	go run ./examples/engine
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"bestjoin"
)

func main() {
	// A synthetic 2000-document corpus: filler text with three
	// concept-word groups planted at different densities.
	corpus := makeCorpus(2000)
	ix := bestjoin.NewIndex()
	for d, body := range corpus {
		ix.AddText(d, body)
	}
	compact := ix.Compact()
	fmt.Printf("indexed %d documents; compressed postings: %d bytes\n\n",
		compact.Docs(), compact.Bytes())

	eng := bestjoin.NewEngine(compact, bestjoin.EngineConfig{})
	query := bestjoin.EngineQuery{
		Concepts: []bestjoin.Concept{
			{"lenovo": 1, "dell": 0.9, "hewlett": 0.8},
			{"nba": 1, "olympics": 0.9, "basketball": 0.7},
			{"partnership": 1, "alliance": 0.8, "deal": 0.6},
		},
		Join: bestjoin.JoinMED(bestjoin.ExpMED{Alpha: 0.1}),
		K:    3,
	}

	// Cold: every concept's postings are decoded and the per-document
	// match lists enter the LRU cache.
	cold, err := eng.Search(context.Background(), query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold query:   %d candidates evaluated in %v\n", cold.Candidates, cold.Elapsed)

	// Cached: the same query again — candidate sets and match lists
	// come straight from the cache, no posting is decoded.
	cached, err := eng.Search(context.Background(), query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cached query: %d candidates evaluated in %v\n\n", cached.Candidates, cached.Elapsed)

	fmt.Println("top documents:")
	for rank, d := range cached.Docs {
		fmt.Printf("#%d doc %d  score %.4f  matchset %v\n", rank+1, d.Doc, d.Score, d.Set)
	}

	// A deadline-bounded query: with an already-expired context the
	// engine returns immediately with the best-so-far (here: empty)
	// answer marked Partial instead of blocking.
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	partial, err := eng.Search(ctx, query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndeadline-bounded query: partial=%v, evaluated %d of %d candidates\n",
		partial.Partial, partial.Evaluated, partial.Candidates)

	// The observability surface: cumulative counters and the query
	// latency histogram (also available via expvar with eng.Publish).
	stats, _ := json.MarshalIndent(eng.Stats(), "", "  ")
	fmt.Printf("\nengine stats:\n%s\n", stats)
}

func makeCorpus(n int) []string {
	rng := rand.New(rand.NewSource(7))
	filler := strings.Fields("quartz ribbon saddle timber umbrella violet walnut yarn " +
		"zeppelin bottle curtain dolphin ember flute glacier helmet ivory jacket kernel lantern")
	planted := [][]string{
		{"lenovo", "dell", "hewlett"},
		{"nba", "olympics", "basketball"},
		{"partnership", "alliance", "deal"},
	}
	docs := make([]string, n)
	for d := range docs {
		words := make([]string, 100)
		for i := range words {
			words[i] = filler[rng.Intn(len(filler))]
		}
		for g, group := range planted {
			if rng.Intn(4) <= 2-g || d%7 == g {
				words[rng.Intn(len(words))] = group[rng.Intn(len(group))]
			}
		}
		docs[d] = strings.Join(words, " ")
	}
	return docs
}
