package bestjoin_test

// Benchmarks for the concurrent indexed query engine: cold vs cached
// query latency (the LRU match-list cache removes all posting
// decompression from repeated queries) and worker-pool scaling (1
// worker vs GOMAXPROCS) on a synthetic corpus of 2000 documents.
//
//	go test -bench=BenchmarkEngine -benchmem

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bestjoin"
)

const engineBenchDocs = 2000

var (
	engineCorpusOnce sync.Once
	engineCompact    *bestjoin.CompactIndex
)

// engineBenchIndex builds (once) a compacted index over a dense
// synthetic corpus: 2000 documents of 300 words with three planted
// concept groups, several occurrences each, so per-document joins do
// real work and most documents are candidates.
func engineBenchIndex() *bestjoin.CompactIndex {
	engineCorpusOnce.Do(func() {
		rng := rand.New(rand.NewSource(99))
		filler := strings.Fields("quartz ribbon saddle timber umbrella violet walnut yarn " +
			"zeppelin bottle curtain dolphin ember flute glacier helmet ivory jacket kernel lantern")
		planted := [][]string{
			{"lenovo", "dell", "hewlett"},
			{"nba", "olympics", "basketball"},
			{"partnership", "alliance", "deal"},
		}
		ix := bestjoin.NewIndex()
		for d := 0; d < engineBenchDocs; d++ {
			words := make([]string, 300)
			for i := range words {
				words[i] = filler[rng.Intn(len(filler))]
			}
			for g, group := range planted {
				if rng.Intn(10) < 7 { // ~70% of docs per concept
					for occ := 0; occ < 4+rng.Intn(5); occ++ {
						words[rng.Intn(len(words))] = group[rng.Intn(len(group))]
					}
				}
				_ = g
			}
			ix.AddText(d, strings.Join(words, " "))
		}
		engineCompact = ix.Compact()
		// Register block-partitioned postings for the main benchmark
		// query's concepts (and only those: the pruning query below
		// keeps exercising the flat decode path), so the cold benchmark
		// measures the block-max skip layer — per-block lazy decode on
		// the worker pool instead of a serial corpus-wide decode.
		for _, c := range engineBenchQuery().Concepts {
			engineCompact.AddConceptBlocks(c)
		}
	})
	return engineCompact
}

func engineBenchQuery() bestjoin.EngineQuery {
	return bestjoin.EngineQuery{
		Concepts: []bestjoin.Concept{
			{"lenovo": 1, "dell": 0.9, "hewlett": 0.8},
			{"nba": 1, "olympics": 0.9, "basketball": 0.7},
			{"partnership": 1, "alliance": 0.8, "deal": 0.6},
		},
		Join: bestjoin.JoinValidWIN(bestjoin.ExpWIN{Alpha: 0.1}),
		K:    10,
	}
}

// BenchmarkEngineColdVsCached compares a query that must decode every
// concept's postings against the identical query answered from the
// LRU cache.
func BenchmarkEngineColdVsCached(b *testing.B) {
	c := engineBenchIndex()
	q := engineBenchQuery()
	b.Run("cold", func(b *testing.B) {
		e := bestjoin.NewEngine(c, bestjoin.EngineConfig{CacheLists: 1 << 14})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.ResetCache()
			if _, err := e.Search(context.Background(), q); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := e.Stats()
		b.ReportMetric(float64(st.BlocksSkipped)/float64(b.N), "blocksskipped/op")
		b.ReportMetric(float64(st.BlockDecodes)/float64(b.N), "blockdecodes/op")
	})
	b.Run("cached", func(b *testing.B) {
		e := bestjoin.NewEngine(c, bestjoin.EngineConfig{CacheLists: 1 << 14})
		if _, err := e.Search(context.Background(), q); err != nil {
			b.Fatal(err)
		}
		warm := e.Stats() // the warm-up query legitimately decodes
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Search(context.Background(), q); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if st := e.Stats(); st.ConceptMisses+st.ListMisses > warm.ConceptMisses+warm.ListMisses {
			b.Fatalf("cached runs decoded postings: %d concept + %d list misses after warm-up",
				st.ConceptMisses-warm.ConceptMisses, st.ListMisses-warm.ListMisses)
		}
	})
}

// BenchmarkEngineCoalesced measures the cross-query coalescing layer
// under its target workload: 8 goroutines issue the identical query
// against a cold cache each iteration, so every block fetch races.
// With coalescing on, one goroutine decodes each block and the rest
// wait for its result — the per-iteration decode count stays at the
// single-query baseline no matter how many queries run concurrently,
// and the benchmark asserts that (with slack of 2 for the benign
// window between the leader's cache publish and its flight removal,
// where a late miss may lead a fresh flight). The nocoalesce twin
// shows the duplicated decode work the layer removes. Pruning is off
// in both so the decode count is a deterministic function of the
// index rather than of scheduling-dependent heap state.
func BenchmarkEngineCoalesced(b *testing.B) {
	c := engineBenchIndex()
	q := engineBenchQuery()
	const conc = 8

	base := bestjoin.NewEngine(c, bestjoin.EngineConfig{CacheLists: 1 << 14, DisablePruning: true})
	if _, err := base.Search(context.Background(), q); err != nil {
		b.Fatal(err)
	}
	single := base.Stats().BlockDecodes
	if single == 0 {
		b.Fatal("baseline query decoded no blocks; coalescing benchmark is vacuous")
	}

	run := func(b *testing.B, cfg bestjoin.EngineConfig) bestjoin.EngineStats {
		// Coalescing only fires when goroutines actually overlap inside
		// the decode window; on a single-core host the 8 query
		// goroutines serialize and every fetch finds the leader's
		// result already cached, reporting coalesceddecodes/op = 0 on
		// both arms. Pin GOMAXPROCS above 1 so the arms genuinely race.
		// This must happen inside the sub-benchmark: the test runner
		// resets GOMAXPROCS to the -cpu value before each b.Run arm.
		if prev := runtime.GOMAXPROCS(0); prev < 4 {
			runtime.GOMAXPROCS(4)
			defer runtime.GOMAXPROCS(prev)
		}
		e := bestjoin.NewEngine(c, cfg)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.ResetCache()
			var wg sync.WaitGroup
			for g := 0; g < conc; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := e.Search(context.Background(), q); err != nil {
						b.Error(err)
					}
				}()
			}
			wg.Wait()
		}
		b.StopTimer()
		st := e.Stats()
		b.ReportMetric(float64(st.BlockDecodes)/float64(b.N), "blockdecodes/op")
		b.ReportMetric(float64(st.CoalescedDecodes)/float64(b.N), "coalesceddecodes/op")
		b.ReportMetric(float64(st.DecodeWaits)/float64(b.N), "decodewaits/op")
		return st
	}

	b.Run("coalesced", func(b *testing.B) {
		st := run(b, bestjoin.EngineConfig{CacheLists: 1 << 14, DisablePruning: true})
		if got := st.BlockDecodes / uint64(b.N); got > single+2 {
			b.Fatalf("%d concurrent queries decoded %d blocks/op; single query needs %d — coalescing not collapsing shared decodes",
				conc, got, single)
		}
		if st.CoalescedDecodes == 0 {
			b.Fatalf("coalesced arm shared no decodes across %d concurrent queries; the arm is not exercising the layer", conc)
		}
	})
	b.Run("nocoalesce", func(b *testing.B) {
		st := run(b, bestjoin.EngineConfig{CacheLists: 1 << 14, DisablePruning: true, DisableCoalescing: true})
		if st.CoalescedDecodes != 0 || st.DecodeWaits != 0 {
			b.Fatalf("coalescing disabled but stats show %d coalesced / %d waits",
				st.CoalescedDecodes, st.DecodeWaits)
		}
	})
}

// engineBenchPruningQuery is a query shaped for max-score pruning:
// steep score spread inside each concept (1 / 0.5 / 0.25) so
// candidate documents' score upper bounds vary widely and the top-k
// floor retires most of the tail without joining it.
func engineBenchPruningQuery() bestjoin.EngineQuery {
	return bestjoin.EngineQuery{
		Concepts: []bestjoin.Concept{
			{"lenovo": 1, "dell": 0.5, "hewlett": 0.25},
			{"nba": 1, "olympics": 0.5, "basketball": 0.25},
		},
		Join: bestjoin.JoinValidWIN(bestjoin.ExpWIN{Alpha: 0.1}),
		K:    10,
	}
}

// BenchmarkEnginePruning compares the cold query path with pruning on
// (the default) and off. Both runs produce the identical top-k — the
// benchmark asserts it once up front — so the delta is pure join work
// avoided; pruneddocs/op and joins/op make the skip rate visible in
// BENCH_engine.json.
func BenchmarkEnginePruning(b *testing.B) {
	c := engineBenchIndex()
	q := engineBenchPruningQuery()

	pe := bestjoin.NewEngine(c, bestjoin.EngineConfig{})
	ue := bestjoin.NewEngine(c, bestjoin.EngineConfig{DisablePruning: true})
	rp, err := pe.Search(context.Background(), q)
	if err != nil {
		b.Fatal(err)
	}
	ru, err := ue.Search(context.Background(), q)
	if err != nil {
		b.Fatal(err)
	}
	if len(rp.Docs) != len(ru.Docs) {
		b.Fatalf("pruned returned %d docs, unpruned %d", len(rp.Docs), len(ru.Docs))
	}
	for i := range rp.Docs {
		if rp.Docs[i].Doc != ru.Docs[i].Doc || rp.Docs[i].Score != ru.Docs[i].Score {
			b.Fatalf("rank %d differs: pruned (%d, %v) vs unpruned (%d, %v)", i,
				rp.Docs[i].Doc, rp.Docs[i].Score, ru.Docs[i].Doc, ru.Docs[i].Score)
		}
	}
	if rp.Pruned == 0 {
		b.Fatal("pruning benchmark query pruned nothing")
	}

	for _, mode := range []struct {
		name string
		cfg  bestjoin.EngineConfig
	}{
		{"pruned", bestjoin.EngineConfig{CacheLists: 1 << 14}},
		{"unpruned", bestjoin.EngineConfig{CacheLists: 1 << 14, DisablePruning: true}},
	} {
		b.Run(mode.name+"/cold", func(b *testing.B) {
			e := bestjoin.NewEngine(c, mode.cfg)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.ResetCache()
				if _, err := e.Search(context.Background(), q); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := e.Stats()
			b.ReportMetric(float64(st.PrunedDocs)/float64(b.N), "pruneddocs/op")
			b.ReportMetric(float64(st.JoinsRun)/float64(b.N), "joins/op")
		})
	}
}

// BenchmarkEngineWorkers measures worker-pool scaling of the join
// phase (caches primed, so posting decompression is off the path):
// 1 worker, GOMAXPROCS, and an oversubscribed 8, so the chunked
// dispatch path is measured past the core count. On a single-core
// host the wider points still exercise the sharded-pool path, just
// without speedup.
func BenchmarkEngineWorkers(b *testing.B) {
	c := engineBenchIndex()
	q := engineBenchQuery()
	multi := runtime.GOMAXPROCS(0)
	if multi == 1 {
		multi = 4
	}
	for _, workers := range []int{1, multi, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := bestjoin.NewEngine(c, bestjoin.EngineConfig{Workers: workers, CacheLists: 1 << 14})
			if _, err := e.Search(context.Background(), q); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Search(context.Background(), q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineAdmission measures admission control under
// saturation: parallel goroutines hammer a cached engine capped at
// MaxInFlight=2 with the shed policy, so most arrivals take the
// rejection fast path. ns/op blends admitted and shed queries;
// shed/op records the rejection rate so BENCH_engine.json shows what
// load shedding costs (a channel try-send) and how much it triggers.
func BenchmarkEngineAdmission(b *testing.B) {
	c := engineBenchIndex()
	q := engineBenchQuery()
	e := bestjoin.NewEngine(c, bestjoin.EngineConfig{
		CacheLists:  1 << 14,
		MaxInFlight: 2,
		Overload:    bestjoin.OverloadShed,
	})
	if _, err := e.Search(context.Background(), q); err != nil {
		b.Fatal(err)
	}
	var unexpected atomic.Int64
	b.ReportAllocs()
	b.SetParallelism(4) // 4×GOMAXPROCS goroutines: saturation even on small hosts
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_, err := e.Search(context.Background(), q)
			if err != nil && !errors.Is(err, bestjoin.ErrOverloaded) {
				unexpected.Add(1)
			}
		}
	})
	b.StopTimer()
	if n := unexpected.Load(); n > 0 {
		b.Fatalf("%d queries failed with an error other than ErrOverloaded", n)
	}
	st := e.Stats()
	b.ReportMetric(float64(st.Shed)/float64(b.N), "shed/op")
}

// TestEnginePublicAPI drives the whole public engine surface once:
// index → compact → marshal round trip → engine → search, plus the
// deadline path returning a Partial result.
func TestEnginePublicAPI(t *testing.T) {
	c := engineBenchIndex()
	reloaded, err := bestjoin.LoadCompactIndex(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	e := bestjoin.NewEngine(reloaded, bestjoin.EngineConfig{})
	q := engineBenchQuery()
	res, err := e.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial || len(res.Docs) == 0 {
		t.Fatalf("full search: partial=%v docs=%d", res.Partial, len(res.Docs))
	}
	if res.Candidates < engineBenchDocs/10 {
		t.Fatalf("suspiciously few candidates: %d", res.Candidates)
	}
	for i := 1; i < len(res.Docs); i++ {
		if res.Docs[i].Score > res.Docs[i-1].Score {
			t.Fatalf("results not sorted best-first at rank %d", i)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	partial, err := e.Search(ctx, q)
	if err != nil {
		t.Fatalf("deadline must not error: %v", err)
	}
	if !partial.Partial {
		t.Error("expired deadline did not mark the result Partial")
	}
	if st := e.Stats(); st.Queries < 2 || st.DeadlineHits == 0 {
		t.Errorf("stats: %+v", st)
	}
}

// engineBenchUnionQuery evaluates the main benchmark query's concepts
// as a ranked union: any concept may match, so the candidate space is
// near the whole corpus — exactly the regime where WAND pivot skipping
// pays or the union path drowns in joins. The family is the additive
// SumMAX: under the product families a single strong list caps every
// union bound at ~its own maximum, so no pivot can fall below a floor
// built from multi-concept matches and WAND degenerates to exhaustive
// (soundly, but with nothing to measure). Additive scoring is where
// the bound separates partial matches from full ones.
func engineBenchUnionQuery() bestjoin.EngineQuery {
	q := engineBenchQuery()
	q.Mode = bestjoin.ModeOR
	q.Join = bestjoin.JoinMAX(bestjoin.SumMAX{Alpha: 0.1})
	return q
}

// BenchmarkEngineUnion measures the disjunctive (block-max WAND) path:
// the ranked union pruned vs exhaustive, plus an m-of-n middle point.
// pivotskips/op and unioncandidates/op land in BENCH_engine.json via
// scripts/benchjson.sh, so the skip rate is tracked across changes the
// same way the conjunctive layer tracks pruneddocs/op.
func BenchmarkEngineUnion(b *testing.B) {
	c := engineBenchIndex()
	q := engineBenchUnionQuery()

	// Gate: the pruned union must be bitwise identical to the
	// exhaustive one before its latency means anything.
	pe := bestjoin.NewEngine(c, bestjoin.EngineConfig{})
	ue := bestjoin.NewEngine(c, bestjoin.EngineConfig{DisablePruning: true})
	rp, err := pe.Search(context.Background(), q)
	if err != nil {
		b.Fatal(err)
	}
	ru, err := ue.Search(context.Background(), q)
	if err != nil {
		b.Fatal(err)
	}
	if len(rp.Docs) != len(ru.Docs) {
		b.Fatalf("pruned union returned %d docs, unpruned %d", len(rp.Docs), len(ru.Docs))
	}
	for i := range rp.Docs {
		if rp.Docs[i].Doc != ru.Docs[i].Doc || rp.Docs[i].Score != ru.Docs[i].Score {
			b.Fatalf("rank %d differs: pruned (%d, %v) vs unpruned (%d, %v)", i,
				rp.Docs[i].Doc, rp.Docs[i].Score, ru.Docs[i].Doc, ru.Docs[i].Score)
		}
	}

	m2 := q
	m2.MinMatch = 2
	for _, bench := range []struct {
		name string
		cfg  bestjoin.EngineConfig
		q    bestjoin.EngineQuery
	}{
		{"or/pruned", bestjoin.EngineConfig{CacheLists: 1 << 14}, q},
		{"or/unpruned", bestjoin.EngineConfig{CacheLists: 1 << 14, DisablePruning: true}, q},
		{"m2/pruned", bestjoin.EngineConfig{CacheLists: 1 << 14}, m2},
	} {
		b.Run(bench.name, func(b *testing.B) {
			e := bestjoin.NewEngine(c, bench.cfg)
			if _, err := e.Search(context.Background(), bench.q); err != nil {
				b.Fatal(err)
			}
			base := e.Stats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Search(context.Background(), bench.q); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := e.Stats()
			b.ReportMetric(float64(st.PivotSkips-base.PivotSkips)/float64(b.N), "pivotskips/op")
			b.ReportMetric(float64(st.UnionCandidates-base.UnionCandidates)/float64(b.N), "unioncandidates/op")
		})
	}
}

// BenchmarkEngineSharded measures the scatter-gather tier on the warm
// path: the same query on a single engine and on 1/2/4-shard
// coordinators, each shard with its own caches and the scatter sharing
// one pruning floor. shardqueries/op and mergedcandidates/op land in
// BENCH_engine.json via scripts/benchjson.sh, so the fan-out cost and
// the merge width are tracked across changes. The sharded answer is
// gated bitwise against the single engine's before timing starts.
func BenchmarkEngineSharded(b *testing.B) {
	c := engineBenchIndex()
	q := engineBenchQuery()
	cfg := bestjoin.EngineConfig{CacheLists: 1 << 14}

	single := bestjoin.NewEngine(c, cfg)
	want, err := single.Search(context.Background(), q)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("single", func(b *testing.B) {
		e := bestjoin.NewEngine(c, cfg)
		if _, err := e.Search(context.Background(), q); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Search(context.Background(), q); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			coord, err := bestjoin.NewShardedEngine(c, shards, cfg)
			if err != nil {
				b.Fatal(err)
			}
			got, err := coord.Search(context.Background(), q)
			if err != nil {
				b.Fatal(err)
			}
			if len(got.Docs) != len(want.Docs) {
				b.Fatalf("sharded returned %d docs, single %d", len(got.Docs), len(want.Docs))
			}
			for i := range got.Docs {
				if got.Docs[i].Doc != want.Docs[i].Doc || got.Docs[i].Score != want.Docs[i].Score {
					b.Fatalf("rank %d differs: sharded (%d, %v) vs single (%d, %v)", i,
						got.Docs[i].Doc, got.Docs[i].Score, want.Docs[i].Doc, want.Docs[i].Score)
				}
			}
			base := coord.Stats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coord.Search(context.Background(), q); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := coord.Stats()
			b.ReportMetric(float64(st.ShardQueries-base.ShardQueries)/float64(b.N), "shardqueries/op")
			b.ReportMetric(float64(st.MergedCandidates-base.MergedCandidates)/float64(b.N), "mergedcandidates/op")
		})
	}
}

// BenchmarkEngineRemote measures the networked shard tier end to end:
// the benchmark query against a 2-process remote fleet (real HTTP
// servers in-process, JSON wire format, full client robustness stack)
// versus the same query on a single engine. The query rides as a
// KernelSpec — the serializable kernel name — so both paths provably
// resolve the same joiner, and the remote answer is gated bitwise
// before timing starts. hedged/op and retried/op land in
// BENCH_engine.json via scripts/benchjson.sh: on a healthy loopback
// fleet both should sit at ~0, so drift flags either a latency
// regression (hedges) or transport flakiness (retries).
func BenchmarkEngineRemote(b *testing.B) {
	c := engineBenchIndex()
	q := engineBenchQuery()
	q.Join = nil
	q.Spec = bestjoin.JoinSpec{Family: "win", Alpha: 0.1, Valid: true}
	cfg := bestjoin.EngineConfig{CacheLists: 1 << 14}

	single := bestjoin.NewEngine(c, cfg)
	want, err := single.Search(context.Background(), q)
	if err != nil {
		b.Fatal(err)
	}

	parts, err := c.Partition(2)
	if err != nil {
		b.Fatal(err)
	}
	addrs := make([]string, len(parts))
	for i, p := range parts {
		mux := http.NewServeMux()
		bestjoin.NewRemoteServer(bestjoin.NewEngine(p, cfg), bestjoin.RemoteServerConfig{}).Register(mux)
		ts := httptest.NewServer(mux)
		defer ts.Close()
		addrs[i] = ts.URL
	}
	fleet, err := bestjoin.NewRemoteFleet(addrs,
		bestjoin.RemoteShardConfig{Timeout: time.Minute}, bestjoin.ShardedEngineConfig{})
	if err != nil {
		b.Fatal(err)
	}
	got, err := fleet.Search(context.Background(), q)
	if err != nil {
		b.Fatal(err)
	}
	if len(got.Docs) != len(want.Docs) {
		b.Fatalf("remote returned %d docs, single %d", len(got.Docs), len(want.Docs))
	}
	for i := range got.Docs {
		if got.Docs[i].Doc != want.Docs[i].Doc || got.Docs[i].Score != want.Docs[i].Score {
			b.Fatalf("rank %d differs: remote (%d, %v) vs single (%d, %v)", i,
				got.Docs[i].Doc, got.Docs[i].Score, want.Docs[i].Doc, want.Docs[i].Score)
		}
	}

	base := fleet.Stats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fleet.Search(context.Background(), q); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := fleet.Stats()
	b.ReportMetric(float64(st.Hedged-base.Hedged)/float64(b.N), "hedged/op")
	b.ReportMetric(float64(st.Retried-base.Retried)/float64(b.N), "retried/op")
	b.ReportMetric(float64(st.ShardQueries-base.ShardQueries)/float64(b.N), "shardqueries/op")
}
