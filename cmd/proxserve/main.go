// Command proxserve serves weighted proximity best-join queries over
// an indexed corpus with the concurrent engine of internal/engine —
// the end-to-end "query + corpus → ranked answers" path.
//
//	proxserve doc1.txt doc2.txt ...   # index the given files (one doc each)
//	proxserve -synth 2000             # index a synthetic 2000-doc corpus
//	proxserve                         # index a small embedded demo corpus
//
// By default proxserve runs a line-oriented REPL on stdin: each line
// is a comma-separated list of query terms, answered with the top-k
// documents; ":stats" prints the engine's observability snapshot and
// ":quit" exits. With -http it serves HTTP instead:
//
//	GET /query?terms=a,b&k=5     top-k documents as JSON
//	GET /query?terms=a,b&mode=or top-k ranked union (any term may match)
//	GET /query?terms=a,b,c&m=2   m-of-n: documents matching ≥ 2 concepts
//	GET /stats                   engine stats as JSON
//	GET /healthz                 readiness: index epoch + per-shard rows
//	GET /debug/vars              expvar (includes bestjoin.engine)
//	GET /debug/pprof/...         profiling endpoints (only with -pprof)
//
// Query terms are expanded into concepts through the embedded lexical
// graph (exact stem = 1.0, one edge = 0.7, …), mirroring proxquery.
// Every query runs under -timeout; queries that exceed it return their
// best-so-far answer marked partial.
//
// The server is built to stay up under abuse and partial failure:
// every HTTP timeout is set (slow-loris connections are cut), request
// bodies are capped, and -max-inflight bounds concurrently admitted
// queries — at the cap the engine queues briefly or, with -shed, fails
// fast, and either way an overloaded query maps to HTTP 429 with a
// Retry-After header rather than unbounded latency. The Retry-After
// value is derived from the current backlog and the observed query
// drain rate (bounded to 1–30 seconds), so clients back off roughly
// as long as the queue actually needs to clear.
//
// At startup the server precomputes auxiliary pair lists for the
// heaviest (longest-posting) stems under the served kernel: two-term
// queries over those pairs are answered straight off a precomputed
// list with zero joins, and wider queries use the lists to tighten
// pruning bounds — answers stay bitwise identical either way. The
// -pair-budget flag caps the bytes spent on lists and -nopairs turns
// the tier off entirely (baseline mode).
//
// With -shards N the corpus is partitioned by document id across N
// child engines behind a scatter-gather coordinator: every query fans
// out to all shards under one shared pruning floor and the per-shard
// answers rank-merge into results bitwise identical to the single
// engine's. /healthz then reports one readiness row per shard, /stats
// rolls the fleet up (per-shard snapshots ride along), and reloads
// roll shard by shard with zero downtime.
//
// The shard tier also runs across processes. A shard process serves
// one doc-partition of the corpus and exposes the remote shard API:
//
//	proxserve -synth 2000 -serve-shard -shard-of 0/2 -http :7601
//	proxserve -synth 2000 -serve-shard -shard-of 1/2 -http :7602
//
// and a coordinator process fans queries out to the fleet instead of
// holding any index of its own:
//
//	proxserve -shards-at 127.0.0.1:7601,127.0.0.1:7602 -http :7600
//
// Remote shard calls get the full robustness stack: per-attempt
// deadline budgets carved from the query deadline, bounded retries
// with jittered exponential backoff, request hedging once an attempt
// outlives the shard's observed latency quantile, and a per-shard
// circuit breaker. With -quorum M the coordinator answers from any M
// of N shards — a degraded but sound subset (flagged in the JSON body
// and with an X-Degraded header) instead of an error — while M-1 or
// fewer answering shards still fail the query.
//
// With -index the server loads a checksummed index file written by
// -save (or CompactIndex.SaveFile) instead of indexing a corpus, and
// SIGHUP hot-reloads that file: in-flight queries finish on the old
// index, new queries see the new one, and a corrupt or torn file is
// rejected — the server keeps serving the index it already has.
//
// In HTTP mode the server shuts down gracefully on SIGINT or SIGTERM:
// the listener closes immediately and in-flight requests get up to
// -drain to finish; a second signal kills the process at once.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"bestjoin"
	"bestjoin/internal/index"
	"bestjoin/internal/lexicon"
)

func main() {
	var (
		fn      = flag.String("fn", "med", "scoring family: win, med, or max")
		alpha   = flag.Float64("alpha", 0.1, "distance-decay rate for the exp scoring functions")
		k       = flag.Int("k", 5, "number of documents to return per query")
		workers = flag.Int("workers", 0, "join workers per query (0 = GOMAXPROCS)")
		cache   = flag.Int("cache", 0, "match-list cache capacity in entries (0 = default)")
		cacheB  = flag.Int64("cache-bytes", 0, "additionally bound the match-list cache to this many bytes (0 = entries only)")
		timeout = flag.Duration("timeout", 2*time.Second, "per-query deadline")
		noprune = flag.Bool("noprune", false, "disable lossless max-score pruning (baseline mode)")
		nocoal  = flag.Bool("nocoalesce", false, "disable cross-query block-decode coalescing (baseline mode)")
		mode    = flag.String("mode", "and", "default query mode: and (every concept must match) or or (ranked union)")
		minm    = flag.Int("min-match", 0, "disjunctive threshold: require at least this many concepts to match (0 = mode default)")
		drain   = flag.Duration("drain", 5*time.Second, "in-flight request drain budget on SIGINT/SIGTERM")
		synth   = flag.Int("synth", 0, "index a synthetic corpus of this many documents instead of files")
		httpad  = flag.String("http", "", "serve HTTP on this address instead of the stdin REPL")

		shards   = flag.Int("shards", 1, "doc-partitioned shards behind a scatter-gather coordinator (1 = single engine)")
		serveShard   = flag.Bool("serve-shard", false, "expose the remote shard API (/shardquery, /swapindex, /shardstats) so a -shards-at coordinator can drive this process")
		shardOf      = flag.String("shard-of", "", "serve partition i of n of the built index, given as i/n (shard processes of a doc-partitioned fleet)")
		shardsAt     = flag.String("shards-at", "", "comma-separated host:port list of remote shard processes to coordinate over (no local index is built)")
		quorum       = flag.Int("quorum", 0, "minimum remote shards that must answer a query: 0 = all (strict), 1..N arms degraded partial answers")
		shardTimeout = flag.Duration("shard-timeout", 2*time.Second, "per-attempt deadline budget for each remote shard call")
		inflight = flag.Int("max-inflight", 64, "maximum concurrently admitted queries (0 = unlimited)")
		shed     = flag.Bool("shed", false, "at the in-flight cap, shed queries immediately instead of queueing")
		idxPath  = flag.String("index", "", "serve this saved index file instead of indexing a corpus (SIGHUP reloads it)")
		savePath = flag.String("save", "", "after indexing, save the checksummed index to this path")
		pprofOn  = flag.Bool("pprof", false, "expose net/http/pprof profiling under /debug/pprof (debug only)")

		nopairs    = flag.Bool("nopairs", false, "disable the auxiliary pair-index tier: no pair lists are built and the engine never serves from them (baseline mode)")
		pairBudget = flag.Int("pair-budget", 4<<20, "storage budget in bytes for precomputed pair lists, spent on the costliest concept pairs first (0 or less = unlimited)")
	)
	flag.Parse()

	// A -shards-at coordinator holds no index of its own; every other
	// mode builds (or loads) one, optionally cut down to its -shard-of
	// partition.
	var compact *bestjoin.CompactIndex
	var err error
	if *shardsAt == "" {
		compact, err = buildIndex(flag.Args(), *synth, *idxPath, *savePath)
		if err != nil {
			log.Fatalf("proxserve: %v", err)
		}
		if *shardOf != "" {
			if compact, err = cutPartition(compact, *shardOf); err != nil {
				log.Fatalf("proxserve: %v", err)
			}
		}
		if !*nopairs {
			buildPairs(compact, bestjoin.BuiltinLexicon(), *fn, *alpha, *pairBudget)
		}
	}
	overload := bestjoin.OverloadBlock
	if *shed {
		overload = bestjoin.OverloadShed
	}
	qmode, err := parseMode(*mode)
	if err != nil {
		log.Fatalf("proxserve: %v", err)
	}
	ecfg := bestjoin.EngineConfig{
		Workers:           *workers,
		CacheLists:        *cache,
		CacheBytes:        *cacheB,
		DisablePruning:    *noprune,
		DisableCoalescing: *nocoal,
		DisablePairIndex:  *nopairs,
		MaxInFlight:       *inflight,
		Overload:          overload,
		Mode:              qmode,
	}
	// The server is written against the Searcher contract, so a remote
	// fleet, a sharded fleet, and a single engine are interchangeable
	// from here on.
	var eng bestjoin.Searcher
	var publish func(string) error
	switch {
	case *shardsAt != "":
		fleet, err := bestjoin.NewRemoteFleet(splitAddrs(*shardsAt),
			bestjoin.RemoteShardConfig{Timeout: *shardTimeout},
			bestjoin.ShardedEngineConfig{Quorum: *quorum})
		if err != nil {
			log.Fatalf("proxserve: %v", err)
		}
		eng, publish = fleet, fleet.Publish
	case *shards > 1:
		coord, err := bestjoin.NewShardedEngine(compact, *shards, ecfg)
		if err != nil {
			log.Fatalf("proxserve: %v", err)
		}
		eng, publish = coord, coord.Publish
	default:
		e := bestjoin.NewEngine(compact, ecfg)
		eng, publish = e, e.Publish
	}
	if err := publish("bestjoin.engine"); err != nil {
		log.Printf("proxserve: %v", err)
	}
	srv := &server{
		eng:      eng,
		lex:      bestjoin.BuiltinLexicon(),
		fn:       *fn,
		alpha:    *alpha,
		k:        *k,
		timeout:  *timeout,
		mode:     qmode,
		minMatch: *minm,
		reload:   &reloadStatus{},
	}
	switch {
	case *shardsAt != "":
		fmt.Printf("coordinating %d remote shards at %s (quorum %d)\n",
			len(splitAddrs(*shardsAt)), *shardsAt, *quorum)
	case *shards > 1:
		fmt.Printf("indexed %d documents (%d bytes compressed) across %d shards\n",
			compact.Docs(), compact.Bytes(), *shards)
	default:
		fmt.Printf("indexed %d documents (%d bytes compressed)\n", compact.Docs(), compact.Bytes())
	}

	if *httpad != "" {
		mux := newMux(srv, *pprofOn)
		if *serveShard {
			// Mount the remote shard API next to the human-facing routes;
			// /healthz stays proxserve's own (same shape and status
			// mapping the shard client expects).
			bestjoin.NewRemoteServer(eng, bestjoin.RemoteServerConfig{}).RegisterShardOnly(mux)
		}
		if *idxPath != "" {
			hup := make(chan os.Signal, 1)
			signal.Notify(hup, syscall.SIGHUP)
			shardOf := *shardOf
			go watchReload(hup, func() error {
				c, err := bestjoin.LoadCompactIndexFile(*idxPath)
				if err != nil {
					return err
				}
				if shardOf != "" {
					if c, err = cutPartition(c, shardOf); err != nil {
						return err
					}
				}
				if !*nopairs {
					// The saved file may predate the pair tier (or carry
					// pairs for another kernel); rebuild so the hot-reloaded
					// index serves pairs like the original did.
					buildPairs(c, srv.lex, *fn, *alpha, *pairBudget)
				}
				eng.SwapIndex(c)
				return nil
			}, srv.reload)
		}
		fmt.Printf("serving on %s (try /query?terms=lenovo,nba,partnership and /debug/vars)\n", *httpad)
		if err := runServer(newHTTPServer(*httpad, mux), nil, *drain); err != nil {
			log.Fatal(err)
		}
		return
	}
	srv.repl(os.Stdin, os.Stdout)
}

// buildIndex resolves the -index/-save/corpus flags into a compacted
// index: a saved index file when -index is given, otherwise the corpus
// (files, synthetic, or embedded demo), optionally persisted with
// crash-safe SaveFile semantics when -save is given.
func buildIndex(files []string, synth int, idxPath, savePath string) (*bestjoin.CompactIndex, error) {
	if idxPath != "" {
		return bestjoin.LoadCompactIndexFile(idxPath)
	}
	corpus, err := loadCorpus(files, synth)
	if err != nil {
		return nil, err
	}
	ix := bestjoin.NewIndex()
	for d, body := range corpus {
		ix.AddText(d, body)
	}
	compact := ix.Compact()
	if savePath != "" {
		if err := compact.SaveFile(savePath); err != nil {
			return nil, err
		}
	}
	return compact, nil
}

// watchReload applies reload for every signal on ch — the SIGHUP
// hot-reload loop. A failed reload (missing, torn, or corrupt index
// file) is logged and the server keeps serving the index it already
// has, because a stale answer beats no answer; the failure is also
// recorded on status (when given) so /healthz can surface it — a
// fleet silently stuck on an old index is an outage in slow motion.
// A later successful reload clears the record.
func watchReload(ch <-chan os.Signal, reload func() error, status *reloadStatus) {
	for range ch {
		err := reload()
		if status != nil {
			status.set(err)
		}
		if err != nil {
			log.Printf("proxserve: reload failed, keeping current index: %v", err)
			continue
		}
		log.Printf("proxserve: index reloaded")
	}
}

// reloadStatus is the sticky record of the most recent hot reload's
// outcome, read by /healthz.
type reloadStatus struct {
	mu      sync.Mutex
	lastErr string
	epoch   uint64 // reload attempts observed (diagnostic)
}

func (rs *reloadStatus) set(err error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.epoch++
	if err != nil {
		rs.lastErr = err.Error()
	} else {
		rs.lastErr = ""
	}
}

func (rs *reloadStatus) get() string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.lastErr
}

// cutPartition resolves -shard-of: "i/n" doc-partitions the index
// into n pieces and keeps piece i (global document ids survive, so a
// fleet of such processes merges exactly like the in-process tier).
func cutPartition(c *bestjoin.CompactIndex, spec string) (*bestjoin.CompactIndex, error) {
	is, ns, ok := strings.Cut(spec, "/")
	if !ok {
		return nil, fmt.Errorf("bad -shard-of %q (want i/n)", spec)
	}
	i, err1 := strconv.Atoi(is)
	n, err2 := strconv.Atoi(ns)
	if err1 != nil || err2 != nil || n <= 0 || i < 0 || i >= n {
		return nil, fmt.Errorf("bad -shard-of %q (want 0 ≤ i < n)", spec)
	}
	parts, err := c.Partition(n)
	if err != nil {
		return nil, err
	}
	return parts[i], nil
}

// splitAddrs parses the -shards-at list.
func splitAddrs(s string) []string {
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

// newMux builds proxserve's HTTP routing table explicitly rather than
// through http.DefaultServeMux, so nothing an imported package
// registers globally is exposed by accident. /debug/vars is always on
// (it only reads counters). The pprof profiling handlers are mounted
// only when -pprof is set: they are a debug-only surface — profiles
// reveal internals and cost CPU while running — so production
// deployments keep the flag off (the default).
func newMux(srv *server, pprofOn bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", srv.handleQuery)
	mux.HandleFunc("/stats", srv.handleStats)
	mux.HandleFunc("/healthz", srv.handleHealthz)
	mux.Handle("/debug/vars", expvar.Handler())
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// maxBodyBytes caps HTTP request bodies. The API is GET-shaped, so any
// sizeable body is either a mistake or an attack; 1 MiB is generous.
const maxBodyBytes = 1 << 20

// newHTTPServer wraps the handler (nil = http.DefaultServeMux) in the
// server hardening layer: every timeout set, so slow-loris headers,
// dribbled bodies, stalled response reads, and idle keep-alive
// connections all get cut, and request bodies are capped.
func newHTTPServer(addr string, h http.Handler) *http.Server {
	if h == nil {
		h = http.DefaultServeMux
	}
	return &http.Server{
		Addr:              addr,
		Handler:           limitBody(h),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// limitBody rejects requests whose declared body exceeds maxBodyBytes
// with 413 up front and caps undeclared (chunked) bodies with
// http.MaxBytesReader, so no handler can be made to buffer an
// unbounded body.
func limitBody(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/swapindex" {
			// The shard API ships whole index partitions here and bounds
			// its own (much larger) bodies; the 1 MiB cap would break it.
			h.ServeHTTP(w, r)
			return
		}
		if r.ContentLength > maxBodyBytes {
			http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		h.ServeHTTP(w, r)
	})
}

// runServer serves hs until it fails or the process receives SIGINT or
// SIGTERM, then shuts down gracefully: the listener closes immediately
// (so health checks and load balancers see the port go away) while
// in-flight requests get up to drain to finish. A second signal during
// the drain kills the process the default way, since signal delivery
// is restored as soon as the first one arrives.
//
// ln is the listener to serve on; nil means listen on hs.Addr. A clean
// shutdown — whether signal-initiated or by a Close/Shutdown call
// elsewhere — returns nil.
func runServer(hs *http.Server, ln net.Listener, drain time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if ln != nil {
			errc <- hs.Serve(ln)
		} else {
			errc <- hs.ListenAndServe()
		}
	}()

	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		stop() // restore default handling: a second signal kills immediately
		log.Printf("proxserve: shutting down, draining for up to %v", drain)
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			// Drain budget exhausted: cut the remaining connections.
			hs.Close()
			return fmt.Errorf("proxserve: drain incomplete: %w", err)
		}
		return nil
	}
}

type server struct {
	eng      bestjoin.Searcher
	lex      *bestjoin.Lexicon
	fn       string
	alpha    float64
	k        int
	timeout  time.Duration
	mode     bestjoin.QueryMode
	minMatch int
	done     drainRate
	// reload records the SIGHUP hot-reload loop's last outcome for
	// /healthz; nil (tests building a bare server) reads as "no reload
	// has failed".
	reload *reloadStatus
}

// parseMode maps the -mode flag (and the mode HTTP parameter) onto a
// QueryMode.
func parseMode(s string) (bestjoin.QueryMode, error) {
	switch s {
	case "", "and":
		return bestjoin.ModeAND, nil
	case "or":
		return bestjoin.ModeOR, nil
	}
	return bestjoin.ModeDefault, fmt.Errorf("unknown query mode %q (want and or or)", s)
}

// query answers one comma-separated term list under the given mode and
// m-of-n threshold; successful completions feed the drain-rate
// estimate behind Retry-After.
func (s *server) query(terms string, k int, mode bestjoin.QueryMode, minMatch int) (*bestjoin.EngineResult, error) {
	var concepts []bestjoin.Concept
	for _, t := range strings.Split(terms, ",") {
		t = strings.TrimSpace(t)
		if t == "" {
			continue
		}
		concepts = append(concepts, s.concept(t))
	}
	if len(concepts) == 0 {
		return nil, fmt.Errorf("no query terms")
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.timeout)
	defer cancel()
	// Spec only, no Join closure: the engine resolves the identical
	// kernel from the declarative spec (the remote tier's bitwise-
	// proven path), and a spec-described query is what makes it
	// eligible for the pair-index serve — a Join closure would win
	// over Spec locally, so the engine could not trust the stored
	// pair scores to match it.
	res, err := s.eng.Search(ctx, bestjoin.EngineQuery{
		Concepts: concepts, Spec: s.spec(), K: k, Mode: mode, MinMatch: minMatch,
	})
	if err == nil {
		s.done.note(time.Now())
	}
	return res, err
}

// drainRate records the timestamps of recent query completions — a
// small ring, lock-held only for the copy — so the server can estimate
// how quickly the engine clears work.
type drainRate struct {
	mu   sync.Mutex
	ring [32]time.Time
	n    int
}

func (d *drainRate) note(t time.Time) {
	d.mu.Lock()
	d.ring[d.n%len(d.ring)] = t
	d.n++
	d.mu.Unlock()
}

// interval returns the mean spacing between retained completions, or 0
// when fewer than two have been observed (no estimate yet).
func (d *drainRate) interval() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.n < 2 {
		return 0
	}
	k := d.n
	if k > len(d.ring) {
		k = len(d.ring)
	}
	newest := d.ring[(d.n-1)%len(d.ring)]
	oldest := d.ring[(d.n-k)%len(d.ring)]
	if !newest.After(oldest) {
		return 0
	}
	return newest.Sub(oldest) / time.Duration(k-1)
}

// retryAfterSecs turns a backlog (queries admitted plus queued) and an
// observed per-query drain interval into a Retry-After hint: roughly
// how long the backlog needs to clear, bounded to [1, 30] seconds so
// clients neither hammer an overloaded server (a flat "1" invites an
// immediate stampede) nor abandon one that is seconds from healthy.
// With no estimate yet the floor of 1 applies.
func retryAfterSecs(backlog int, interval time.Duration) int {
	if backlog <= 0 || interval <= 0 {
		return 1
	}
	secs := int(math.Ceil((time.Duration(backlog) * interval).Seconds()))
	if secs < 1 {
		return 1
	}
	if secs > 30 {
		return 30
	}
	return secs
}

// retryAfter derives the Retry-After header value from the engine's
// current backlog and the observed drain rate.
func (s *server) retryAfter() int {
	st := s.eng.Stats()
	return retryAfterSecs(st.InFlight+st.QueueDepth, s.done.interval())
}

// concept expands one query term through the lexical graph: the term
// itself at score 1 plus its graph neighborhood at 1 − 0.3·distance.
func (s *server) concept(term string) bestjoin.Concept {
	return expandConcept(s.lex, term)
}

// expandConcept is the term → concept expansion shared by the query
// path and the offline pair build: both must derive bit-identical
// concepts for a pair list built at startup to be found at query time.
func expandConcept(lex *bestjoin.Lexicon, term string) bestjoin.Concept {
	c := index.ConceptFromGraph(lex.Neighborhood(term, 3), lexicon.ScorePerEdge)
	if len(c) == 0 {
		c = bestjoin.Concept{term: 1}
	}
	return c
}

// pairConceptCount bounds how many of the corpus's heaviest stems the
// startup pair build considers; the -pair-budget byte cap then selects
// among their O(n²) pairs costliest-first.
const pairConceptCount = 24

// buildPairs precomputes auxiliary pair lists over the corpus's
// heaviest stems, each expanded into a concept exactly as the query
// path expands terms, under the served kernel spec — so the two-term
// queries the kernel path handles worst (common-word pairs) are the
// ones answered from precomputed lists. Build failures only cost the
// speedup (the kernel path answers everything), so they log and serve.
func buildPairs(c *bestjoin.CompactIndex, lex *bestjoin.Lexicon, fn string, alpha float64, budget int) {
	concepts := make([]bestjoin.Concept, 0, pairConceptCount)
	for _, stem := range c.HeavyStems(pairConceptCount) {
		concepts = append(concepts, expandConcept(lex, stem))
	}
	n, err := bestjoin.BuildPairIndex(c, concepts, specFor(fn, alpha), budget)
	if err != nil {
		log.Printf("proxserve: pair-index build failed (serving without pairs): %v", err)
		return
	}
	fmt.Printf("precomputed %d concept-pair lists over the %d heaviest stems\n", n, len(concepts))
}

// spec is the -fn/-alpha kernel in declarative form — the
// serializable kernel name a query carries so local engines, remote
// shards, and the pair index all resolve the identical kernel.
func (s *server) spec() bestjoin.JoinSpec {
	return specFor(s.fn, s.alpha)
}

// specFor normalizes the -fn flag into the declarative kernel spec;
// the pair build uses the same mapping so its lists carry the exact
// fingerprint production queries present.
func specFor(fn string, alpha float64) bestjoin.JoinSpec {
	if fn != "win" && fn != "max" {
		fn = "med"
	}
	return bestjoin.JoinSpec{Family: fn, Alpha: alpha, Valid: true}
}

func (s *server) repl(in *os.File, out *os.File) {
	fmt.Fprintf(out, "enter comma-separated query terms (:stats for counters, :quit to exit)\n> ")
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == ":quit" || line == ":q":
			return
		case line == ":stats":
			b, _ := json.MarshalIndent(s.eng.Stats(), "", "  ")
			fmt.Fprintln(out, string(b))
		default:
			res, err := s.query(line, s.k, s.mode, s.minMatch)
			if err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
				break
			}
			printResult(out, res)
		}
		fmt.Fprint(out, "> ")
	}
}

func printResult(out *os.File, res *bestjoin.EngineResult) {
	state := ""
	if res.Partial {
		state = " [PARTIAL: deadline hit]"
	}
	fmt.Fprintf(out, "%d candidates, %d evaluated, %d pruned in %v%s\n",
		res.Candidates, res.Evaluated, res.Pruned, res.Elapsed.Round(time.Microsecond), state)
	for rank, d := range res.Docs {
		fmt.Fprintf(out, "#%d doc %d  score %.4f  matchset %v\n", rank+1, d.Doc, d.Score, d.Set)
	}
	if len(res.Docs) == 0 {
		fmt.Fprintln(out, "no documents matched the query")
	}
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	terms := r.URL.Query().Get("terms")
	if terms == "" {
		http.Error(w, "missing terms parameter", http.StatusBadRequest)
		return
	}
	k := s.k
	if kq := r.URL.Query().Get("k"); kq != "" {
		n, err := strconv.Atoi(kq)
		if err != nil || n <= 0 {
			http.Error(w, "bad k parameter", http.StatusBadRequest)
			return
		}
		k = n
	}
	mode := s.mode
	if mq := r.URL.Query().Get("mode"); mq != "" {
		m, err := parseMode(mq)
		if err != nil {
			http.Error(w, "bad mode parameter (want and or or)", http.StatusBadRequest)
			return
		}
		mode = m
	}
	minMatch := s.minMatch
	if mm := r.URL.Query().Get("m"); mm != "" {
		n, err := strconv.Atoi(mm)
		if err != nil || n < 0 {
			http.Error(w, "bad m parameter", http.StatusBadRequest)
			return
		}
		minMatch = n
	}
	res, err := s.query(terms, k, mode, minMatch)
	if err != nil {
		// Overload is the client's cue to back off and retry, not a bad
		// request: 429 plus Retry-After, the contract load balancers and
		// well-behaved clients already understand. The hint scales with
		// the backlog and the observed drain rate.
		if errors.Is(err, bestjoin.ErrOverloaded) {
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
			http.Error(w, "engine overloaded, retry later", http.StatusTooManyRequests)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if res.Degraded {
		// Header first: clients streaming the body (or not parsing it)
		// still see that the answer is a sound subset, not the full one.
		w.Header().Set("X-Degraded", "true")
	}
	writeJSON(w, queryResponse{EngineResult: res, Degraded: res.Degraded, Partial: res.Partial})
}

// queryResponse wraps the engine result with explicit lower-case
// degraded/partial flags, so API clients need not know the engine's
// field casing to notice an answer that is best-effort: degraded
// means part of the work failed and was dropped (including quorum
// answers missing failed shards — see FailedShards), partial means
// the deadline cut evaluation short. Both answers remain sound
// subsets of the healthy one.
type queryResponse struct {
	*bestjoin.EngineResult
	Degraded bool `json:"degraded"`
	Partial  bool `json:"partial"`
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.eng.Stats()
	out := struct {
		bestjoin.EngineStats
		Note string `json:",omitempty"`
	}{EngineStats: st}
	if st.UnionUnpruned > 0 {
		out.Note = fmt.Sprintf("%d disjunctive queries ran without union pruning "+
			"(no usable score bound for the deployed kernel); results are correct but slower — see UnionUnpruned",
			st.UnionUnpruned)
	}
	writeJSON(w, out)
}

// handleHealthz reports the Searcher's readiness: the current index
// epoch, the corpus size, and — when serving a sharded fleet — one
// row per shard. Ready maps to 200, anything else to 503, so load
// balancers can use the endpoint unmodified.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := s.eng.Health()
	if s.reload != nil && h.Err == "" {
		// Surface the SIGHUP reload loop's last failure: a server stuck
		// on a stale index stays Ready (it is still serving) but the
		// reason is visible to whoever polls health.
		h.Err = s.reload.get()
	}
	if !h.Ready {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(h)
		return
	}
	writeJSON(w, h)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// loadCorpus assembles the document set: the given files (one document
// each), a synthetic corpus, or the embedded demo corpus.
func loadCorpus(files []string, synth int) ([]string, error) {
	if synth > 0 {
		return synthCorpus(synth), nil
	}
	if len(files) == 0 {
		return demoCorpus, nil
	}
	docs := make([]string, len(files))
	for i, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		docs[i] = string(b)
	}
	return docs, nil
}

// synthCorpus generates a deterministic corpus with three planted
// concept-word groups at varying densities over a filler vocabulary,
// so queries like "lenovo,nba,partnership" have non-trivial answers.
func synthCorpus(n int) []string {
	rng := rand.New(rand.NewSource(42))
	filler := strings.Fields("quartz ribbon saddle timber umbrella violet walnut yarn " +
		"zeppelin bottle curtain dolphin ember flute glacier helmet ivory jacket kernel lantern")
	planted := [][]string{
		{"lenovo", "dell", "hewlett"},
		{"nba", "olympics", "basketball"},
		{"partnership", "alliance", "deal"},
	}
	docs := make([]string, n)
	for d := range docs {
		words := make([]string, 80)
		for i := range words {
			words[i] = filler[rng.Intn(len(filler))]
		}
		for g, group := range planted {
			if rng.Intn(4) <= 2-g || d%7 == g {
				words[rng.Intn(len(words))] = group[rng.Intn(len(group))]
			}
		}
		docs[d] = strings.Join(words, " ")
	}
	return docs
}

// demoCorpus is the small news corpus of examples/indexed.
var demoCorpus = []string{
	`As part of the new deal, Lenovo will become the official PC partner
	 of the NBA, and it will be marketing its NBA affiliation in the US and
	 in China. The laptop maker has a similar marketing and technology
	 partnership with the Olympic Games.`,
	`Dell announced quarterly earnings today. The PC maker said laptop
	 shipments grew, while desktop sales were flat.`,
	`The NBA finals drew record audiences, and the basketball league
	 announced a new broadcast deal with the network.`,
	`Hewlett-Packard opened a research lab in the valley this week, while
	 the Olympics committee met in Lausanne, and a partnership between two
	 regional banks was announced late on Friday.`,
	`The museum opened a new exhibition of renaissance ceramics from
	 Jingdezhen, drawing visitors from across the region.`,
}
