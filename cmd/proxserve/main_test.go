package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"bestjoin"
)

func demoServer(t *testing.T) *server {
	t.Helper()
	ix := bestjoin.NewIndex()
	for d, body := range demoCorpus {
		ix.AddText(d, body)
	}
	return &server{
		eng:     bestjoin.NewEngine(ix.Compact(), bestjoin.EngineConfig{Workers: 2}),
		lex:     bestjoin.BuiltinLexicon(),
		fn:      "med",
		alpha:   0.1,
		k:       3,
		timeout: 5 * time.Second,
	}
}

func TestQueryRanksDemoCorpus(t *testing.T) {
	s := demoServer(t)
	res, err := s.query("lenovo,nba,partnership", 3, s.mode, s.minMatch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Error("unexpected partial result")
	}
	if len(res.Docs) == 0 {
		t.Fatal("no documents returned")
	}
	// Document 0 holds all three concepts in one tight sentence; it
	// must outrank document 3, where they are scattered.
	if res.Docs[0].Doc != 0 {
		t.Errorf("top document %d, want 0", res.Docs[0].Doc)
	}
	if _, err := s.query(" , ", 3, s.mode, s.minMatch); err == nil {
		t.Error("empty term list did not error")
	}
}

func TestHandleQueryJSON(t *testing.T) {
	s := demoServer(t)
	rec := httptest.NewRecorder()
	s.handleQuery(rec, httptest.NewRequest("GET", "/query?terms=lenovo,nba&k=2", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var res bestjoin.EngineResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatalf("response is not EngineResult JSON: %v", err)
	}
	if len(res.Docs) == 0 || len(res.Docs) > 2 {
		t.Errorf("got %d docs, want 1..2", len(res.Docs))
	}

	rec = httptest.NewRecorder()
	s.handleQuery(rec, httptest.NewRequest("GET", "/query", nil))
	if rec.Code != 400 {
		t.Errorf("missing terms: status %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.handleQuery(rec, httptest.NewRequest("GET", "/query?terms=a&k=zero", nil))
	if rec.Code != 400 {
		t.Errorf("bad k: status %d, want 400", rec.Code)
	}
}

func TestREPLCommands(t *testing.T) {
	// The REPL reads *os.File; exercise the command dispatch through
	// query/stats directly plus a pipe-backed round trip.
	s := demoServer(t)
	if _, err := s.query("lenovo", 1, s.mode, s.minMatch); err != nil {
		t.Fatal(err)
	}
	st := s.eng.Stats()
	if st.Queries == 0 {
		t.Error("stats did not count the query")
	}
	b, err := json.Marshal(st)
	if err != nil || !strings.Contains(string(b), "Queries") {
		t.Errorf("stats JSON: %s, %v", b, err)
	}
}

func TestSynthCorpusDeterministicAndQueryable(t *testing.T) {
	a, b := synthCorpus(50), synthCorpus(50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("synthetic corpus not deterministic at doc %d", i)
		}
	}
	ix := bestjoin.NewIndex()
	for d, body := range a {
		ix.AddText(d, body)
	}
	s := demoServer(t)
	s.eng = bestjoin.NewEngine(ix.Compact(), bestjoin.EngineConfig{})
	res, err := s.query("lenovo,nba,partnership", 5, s.mode, s.minMatch)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Docs) == 0 {
		t.Error("synthetic corpus yields no answers for the planted query")
	}
}

func TestRunServerGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		close(started)
		time.Sleep(200 * time.Millisecond)
		w.Write([]byte("done"))
	})
	hs := &http.Server{Handler: mux}

	serveErr := make(chan error, 1)
	go func() { serveErr <- runServer(hs, ln, 2*time.Second) }()

	// An in-flight request at signal time must be allowed to finish.
	reqErr := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err == nil {
			defer resp.Body.Close()
			if b, _ := io.ReadAll(resp.Body); string(b) != "done" {
				err = fmt.Errorf("drained request body %q, want %q", b, "done")
			}
		}
		reqErr <- err
	}()

	<-started
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("runServer did not return after SIGTERM")
	}
	if err := <-reqErr; err != nil {
		t.Fatalf("in-flight request: %v", err)
	}
	// The port must be closed once runServer returns.
	if _, err := http.Get("http://" + ln.Addr().String() + "/slow"); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

// TestNewMuxRoutes pins the explicit routing table: the query, stats,
// and expvar endpoints are always served, while the pprof profiling
// surface exists only when the -pprof flag opted in — off by default,
// a profiling endpoint on a production port is an information leak.
func TestNewMuxRoutes(t *testing.T) {
	s := demoServer(t)
	get := func(mux http.Handler, path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	off := newMux(s, false)
	if rec := get(off, "/query?terms=lenovo&k=1"); rec.Code != 200 {
		t.Errorf("/query: status %d, want 200 (body %q)", rec.Code, rec.Body)
	}
	if rec := get(off, "/stats"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "Queries") {
		t.Errorf("/stats: status %d body %q", rec.Code, rec.Body)
	}
	if rec := get(off, "/healthz"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "ready") {
		t.Errorf("/healthz: status %d body %q", rec.Code, rec.Body)
	}
	if rec := get(off, "/debug/vars"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "cmdline") {
		t.Errorf("/debug/vars: status %d, want expvar JSON", rec.Code)
	}
	if rec := get(off, "/debug/pprof/"); rec.Code != http.StatusNotFound {
		t.Errorf("pprof served without -pprof: status %d, want 404", rec.Code)
	}

	on := newMux(s, true)
	if rec := get(on, "/debug/pprof/"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("pprof index with -pprof: status %d", rec.Code)
	}
	if rec := get(on, "/debug/pprof/cmdline"); rec.Code != 200 {
		t.Errorf("pprof cmdline with -pprof: status %d", rec.Code)
	}
}

// TestNewHTTPServerTimeouts pins the server hardening contract: every
// timeout set, so no connection class can hold the server forever.
func TestNewHTTPServerTimeouts(t *testing.T) {
	hs := newHTTPServer("127.0.0.1:0", nil)
	if hs.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: slow-loris headers hold connections forever")
	}
	if hs.ReadTimeout <= 0 {
		t.Error("ReadTimeout unset: dribbled bodies hold connections forever")
	}
	if hs.WriteTimeout <= 0 {
		t.Error("WriteTimeout unset: stalled readers hold connections forever")
	}
	if hs.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset: idle keep-alives hold connections forever")
	}
	if hs.Handler == nil {
		t.Error("nil handler not defaulted")
	}
}

// TestLimitBody pins both body caps: a declared oversize body is
// rejected up front with 413, and an undeclared (chunked) oversize
// body is cut mid-read by MaxBytesReader.
func TestLimitBody(t *testing.T) {
	var readErr error
	h := limitBody(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, readErr = io.Copy(io.Discard, r.Body)
	}))

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/query", strings.NewReader("x"))
	req.ContentLength = maxBodyBytes + 1
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("declared oversize body: status %d, want 413", rec.Code)
	}

	readErr = nil
	rec = httptest.NewRecorder()
	req = httptest.NewRequest("POST", "/query", strings.NewReader(strings.Repeat("a", maxBodyBytes+16)))
	req.ContentLength = -1 // chunked: length unknown up front
	h.ServeHTTP(rec, req)
	if readErr == nil {
		t.Error("oversize chunked body read to completion; MaxBytesReader did not cut it")
	}
}

// TestHandleQueryOverloaded drives the admission-control path end to
// end: with MaxInFlight=1 and the shed policy, a query arriving while
// the only slot is blocked inside a kernel gets HTTP 429 with
// Retry-After — and once the slot frees, the same query succeeds.
func TestHandleQueryOverloaded(t *testing.T) {
	s := demoServer(t)
	ix := bestjoin.NewIndex()
	for d, body := range demoCorpus {
		ix.AddText(d, body)
	}
	s.eng = bestjoin.NewEngine(ix.Compact(), bestjoin.EngineConfig{
		Workers:     1,
		MaxInFlight: 1,
		Overload:    bestjoin.OverloadShed,
	})

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	blocking := bestjoin.KernelFactory(func() bestjoin.JoinKernel {
		return bestjoin.JoinKernelFunc(func(ls bestjoin.MatchLists) (bestjoin.Matchset, float64, bool) {
			once.Do(func() { close(entered) })
			<-release
			return nil, 0, false
		})
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.eng.Search(context.Background(), bestjoin.EngineQuery{
			Concepts: []bestjoin.Concept{{"lenovo": 1}},
			Join:     blocking,
			K:        1,
		})
	}()
	<-entered

	rec := httptest.NewRecorder()
	s.handleQuery(rec, httptest.NewRequest("GET", "/query?terms=lenovo", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overloaded engine: status %d, want 429 (body %q)", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	if st := s.eng.Stats(); st.Shed == 0 {
		t.Error("shed query not counted in Stats().Shed")
	}

	close(release)
	<-done
	rec = httptest.NewRecorder()
	s.handleQuery(rec, httptest.NewRequest("GET", "/query?terms=lenovo", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("after slot freed: status %d, want 200 (body %q)", rec.Code, rec.Body)
	}
}

// TestWatchReload pins the hot-reload loop: every signal triggers one
// reload attempt, a failing reload does not stop the loop but is
// recorded on the status (and cleared by the next success), and
// closing the channel ends it.
func TestWatchReload(t *testing.T) {
	ch := make(chan os.Signal)
	attempted := make(chan int)
	calls := 0
	finished := make(chan struct{})
	status := &reloadStatus{}
	go func() {
		defer close(finished)
		watchReload(ch, func() error {
			calls++
			attempted <- calls
			if calls == 2 {
				return fmt.Errorf("simulated corrupt index")
			}
			return nil
		}, status)
	}()
	wantErr := []string{"", "simulated corrupt index", ""}
	for i := 1; i <= 3; i++ {
		ch <- syscall.SIGHUP
		if got := <-attempted; got != i {
			t.Fatalf("reload attempt %d recorded as %d", i, got)
		}
		// The loop records status after the reload func returns; the
		// attempted receive above happens inside it, so poll briefly.
		deadline := time.Now().Add(2 * time.Second)
		for status.get() != wantErr[i-1] && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if got := status.get(); got != wantErr[i-1] {
			t.Fatalf("after reload %d: lastErr %q, want %q", i, got, wantErr[i-1])
		}
	}
	close(ch)
	select {
	case <-finished:
	case <-time.After(2 * time.Second):
		t.Fatal("watchReload did not exit when the signal channel closed")
	}
}

// TestBuildIndexAndReloadSwap covers the -save/-index/SIGHUP pipeline
// without a process: save an index, serve it, fail a reload on corrupt
// bytes (old index stays live), then reload a new version.
func TestBuildIndexAndReloadSwap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.idx")

	ix := bestjoin.NewIndex()
	ix.AddText(0, "alpha beta gamma")
	if err := ix.Compact().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	compact, err := buildIndex(nil, 0, path, "")
	if err != nil {
		t.Fatal(err)
	}
	eng := bestjoin.NewEngine(compact, bestjoin.EngineConfig{Workers: 1})
	reload := func() error {
		c, err := bestjoin.LoadCompactIndexFile(path)
		if err != nil {
			return err
		}
		eng.SwapIndex(c)
		return nil
	}

	// Corrupt file on disk: reload must fail and keep the old index.
	if err := os.WriteFile(path, []byte("garbage"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := reload(); err == nil {
		t.Fatal("reload of corrupt index file succeeded")
	}
	if eng.Index().Docs() != 1 {
		t.Fatalf("old index lost after failed reload: %d docs", eng.Index().Docs())
	}

	// New version on disk: reload must swap it in.
	ix2 := bestjoin.NewIndex()
	ix2.AddText(0, "alpha beta")
	ix2.AddText(1, "gamma delta")
	if err := ix2.Compact().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := reload(); err != nil {
		t.Fatal(err)
	}
	if eng.Index().Docs() != 2 {
		t.Fatalf("reload did not swap: %d docs, want 2", eng.Index().Docs())
	}
	if st := eng.Stats(); st.IndexReloads != 1 {
		t.Errorf("IndexReloads = %d, want 1", st.IndexReloads)
	}
}

// TestRetryAfterSecs pins the backlog/drain-rate → Retry-After
// mapping and its [1, 30] bounds.
func TestRetryAfterSecs(t *testing.T) {
	cases := []struct {
		backlog  int
		interval time.Duration
		want     int
	}{
		{0, time.Second, 1},            // nothing queued: immediate retry
		{5, 0, 1},                      // no drain estimate yet: floor
		{1, 10 * time.Millisecond, 1},  // sub-second clear: floor
		{3, 500 * time.Millisecond, 2}, // 1.5s rounded up
		{4, 2 * time.Second, 8},
		{100, time.Second, 30}, // deep backlog: capped, not 100s
		{-1, time.Second, 1},
	}
	for _, c := range cases {
		if got := retryAfterSecs(c.backlog, c.interval); got != c.want {
			t.Errorf("retryAfterSecs(%d, %v) = %d, want %d", c.backlog, c.interval, got, c.want)
		}
	}
}

// TestDrainRateInterval pins the completion-ring estimator, including
// wraparound past the ring size.
func TestDrainRateInterval(t *testing.T) {
	var d drainRate
	if got := d.interval(); got != 0 {
		t.Fatalf("empty ring interval %v, want 0", got)
	}
	base := time.Unix(1000, 0)
	d.note(base)
	if got := d.interval(); got != 0 {
		t.Fatalf("single completion interval %v, want 0", got)
	}
	d.note(base.Add(2 * time.Second))
	if got := d.interval(); got != 2*time.Second {
		t.Fatalf("two completions 2s apart: interval %v", got)
	}
	// 40 completions one second apart: the ring retains the last 32,
	// spanning 31 seconds over 31 gaps.
	d = drainRate{}
	for i := 0; i < 40; i++ {
		d.note(base.Add(time.Duration(i) * time.Second))
	}
	if got := d.interval(); got != time.Second {
		t.Fatalf("steady 1/s completions: interval %v, want 1s", got)
	}
}

// TestHandleQueryRetryAfterDerived drives both overload policies end
// to end and checks the Retry-After header reflects the seeded drain
// rate instead of the old hardcoded "1".
func TestHandleQueryRetryAfterDerived(t *testing.T) {
	for _, policy := range []struct {
		name     string
		overload bestjoin.OverloadPolicy
	}{
		{"shed", bestjoin.OverloadShed},
		{"block", bestjoin.OverloadBlock},
	} {
		t.Run(policy.name, func(t *testing.T) {
			s := demoServer(t)
			ix := bestjoin.NewIndex()
			for d, body := range demoCorpus {
				ix.AddText(d, body)
			}
			s.eng = bestjoin.NewEngine(ix.Compact(), bestjoin.EngineConfig{
				Workers:     1,
				MaxInFlight: 1,
				Overload:    policy.overload,
			})
			// Block waits for a slot until the query's context expires;
			// keep the handler's deadline short so the test stays fast.
			s.timeout = 100 * time.Millisecond
			// Seed the drain estimate: recent queries completed 3s
			// apart, so one blocked slot should hint ~3s, not 1.
			base := time.Unix(2000, 0)
			s.done.note(base)
			s.done.note(base.Add(3 * time.Second))

			entered := make(chan struct{})
			release := make(chan struct{})
			var once sync.Once
			blocking := bestjoin.KernelFactory(func() bestjoin.JoinKernel {
				return bestjoin.JoinKernelFunc(func(ls bestjoin.MatchLists) (bestjoin.Matchset, float64, bool) {
					once.Do(func() { close(entered) })
					<-release
					return nil, 0, false
				})
			})
			done := make(chan struct{})
			go func() {
				defer close(done)
				s.eng.Search(context.Background(), bestjoin.EngineQuery{
					Concepts: []bestjoin.Concept{{"lenovo": 1}},
					Join:     blocking,
					K:        1,
				})
			}()
			<-entered
			defer func() { close(release); <-done }()

			rec := httptest.NewRecorder()
			s.handleQuery(rec, httptest.NewRequest("GET", "/query?terms=lenovo", nil))
			if rec.Code != http.StatusTooManyRequests {
				t.Fatalf("status %d, want 429 (body %q)", rec.Code, rec.Body)
			}
			ra := rec.Header().Get("Retry-After")
			secs, err := strconv.Atoi(ra)
			if err != nil {
				t.Fatalf("Retry-After %q not an integer", ra)
			}
			if secs < 3 || secs > 30 {
				t.Fatalf("Retry-After %d with a 3s drain interval and one blocked slot, want within [3, 30]", secs)
			}
		})
	}
}

// TestHandleQueryModes drives the mode and m parameters: OR rescues a
// query whose extra term is absent from the corpus, AND keeps the
// conjunctive contract, and malformed values are 400s.
func TestHandleQueryModes(t *testing.T) {
	s := demoServer(t)

	get := func(url string) (*httptest.ResponseRecorder, *bestjoin.EngineResult) {
		t.Helper()
		rec := httptest.NewRecorder()
		s.handleQuery(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != http.StatusOK {
			return rec, nil
		}
		var res bestjoin.EngineResult
		if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
			t.Fatalf("%s: bad JSON: %v", url, err)
		}
		return rec, &res
	}

	// "zzzunknownzzz" appears nowhere: conjunctive finds nothing,
	// the ranked union still returns the lenovo documents.
	rec, and := get("/query?terms=lenovo,zzzunknownzzz")
	if and == nil {
		t.Fatalf("AND query failed: %d %q", rec.Code, rec.Body)
	}
	if len(and.Docs) != 0 {
		t.Fatalf("conjunctive query with an unknown term returned %d docs", len(and.Docs))
	}
	rec, or := get("/query?terms=lenovo,zzzunknownzzz&mode=or")
	if or == nil {
		t.Fatalf("OR query failed: %d %q", rec.Code, rec.Body)
	}
	if len(or.Docs) == 0 {
		t.Fatal("ranked union returned nothing despite lenovo matches")
	}

	// m=2 of three terms: answerable from documents holding two.
	rec, mofn := get("/query?terms=lenovo,nba,zzzunknownzzz&m=2")
	if mofn == nil {
		t.Fatalf("m-of-n query failed: %d %q", rec.Code, rec.Body)
	}
	if len(mofn.Docs) == 0 {
		t.Fatal("m=2 union returned nothing despite lenovo+nba documents")
	}

	for _, bad := range []string{
		"/query?terms=lenovo&mode=maybe",
		"/query?terms=lenovo&m=-1",
		"/query?terms=lenovo&m=x",
	} {
		rec := httptest.NewRecorder()
		s.handleQuery(rec, httptest.NewRequest("GET", bad, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, rec.Code)
		}
	}

	// m larger than the concept count is the engine's range error,
	// surfaced as a 400 rather than a 500 or a silent clamp.
	rec = httptest.NewRecorder()
	s.handleQuery(rec, httptest.NewRequest("GET", "/query?terms=lenovo&m=5", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("m>n: status %d, want 400", rec.Code)
	}
}

// TestParseMode pins the flag/parameter mapping.
func TestParseMode(t *testing.T) {
	if m, err := parseMode("and"); err != nil || m != bestjoin.ModeAND {
		t.Errorf("parseMode(and) = %v, %v", m, err)
	}
	if m, err := parseMode("or"); err != nil || m != bestjoin.ModeOR {
		t.Errorf("parseMode(or) = %v, %v", m, err)
	}
	if _, err := parseMode("xor"); err == nil {
		t.Error("parseMode(xor) accepted")
	}
}

// shardedServer builds a server backed by a ShardedEngine over the
// demo corpus — the -shards path without a process.
func shardedServer(t *testing.T, shards int) *server {
	t.Helper()
	ix := bestjoin.NewIndex()
	for d, body := range demoCorpus {
		ix.AddText(d, body)
	}
	coord, err := bestjoin.NewShardedEngine(ix.Compact(), shards, bestjoin.EngineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return &server{
		eng:     coord,
		lex:     bestjoin.BuiltinLexicon(),
		fn:      "med",
		alpha:   0.1,
		k:       3,
		timeout: 5 * time.Second,
	}
}

// TestShardedQueryMatchesSingle drives the -shards path through the
// HTTP handler: the sharded server's answer must match the single
// engine's document for document, score for score.
func TestShardedQueryMatchesSingle(t *testing.T) {
	single := demoServer(t)
	sharded := shardedServer(t, 3)
	for _, url := range []string{
		"/query?terms=lenovo,nba,partnership",
		"/query?terms=lenovo,nba&mode=or",
		"/query?terms=lenovo,nba,partnership&m=2",
	} {
		recS := httptest.NewRecorder()
		single.handleQuery(recS, httptest.NewRequest("GET", url, nil))
		recC := httptest.NewRecorder()
		sharded.handleQuery(recC, httptest.NewRequest("GET", url, nil))
		if recS.Code != 200 || recC.Code != 200 {
			t.Fatalf("%s: status %d (single) vs %d (sharded)", url, recS.Code, recC.Code)
		}
		var rs, rc bestjoin.EngineResult
		if err := json.Unmarshal(recS.Body.Bytes(), &rs); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(recC.Body.Bytes(), &rc); err != nil {
			t.Fatal(err)
		}
		if len(rs.Docs) != len(rc.Docs) {
			t.Fatalf("%s: %d docs (single) vs %d (sharded)", url, len(rs.Docs), len(rc.Docs))
		}
		for i := range rs.Docs {
			if rs.Docs[i].Doc != rc.Docs[i].Doc || rs.Docs[i].Score != rc.Docs[i].Score {
				t.Fatalf("%s: rank %d differs: %+v vs %+v", url, i, rs.Docs[i], rc.Docs[i])
			}
		}
	}
}

// TestHandleHealthz pins the readiness endpoint on both serving
// shapes: a ready single engine reports its epoch with no shard rows,
// a sharded fleet reports one row per shard, and epochs move on
// reload.
func TestHandleHealthz(t *testing.T) {
	s := demoServer(t)
	rec := httptest.NewRecorder()
	s.handleHealthz(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("single-engine /healthz: status %d (%s)", rec.Code, rec.Body)
	}
	var h bestjoin.EngineHealth
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatalf("healthz is not EngineHealth JSON: %v", err)
	}
	if !h.Ready || h.Epoch != 0 || h.Docs != len(demoCorpus) || len(h.Shards) != 0 {
		t.Fatalf("single-engine health = %+v", h)
	}

	sh := shardedServer(t, 3)
	rec = httptest.NewRecorder()
	sh.handleHealthz(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("sharded /healthz: status %d (%s)", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if !h.Ready || len(h.Shards) != 3 || h.Docs != len(demoCorpus) {
		t.Fatalf("sharded health = %+v", h)
	}
	for i, row := range h.Shards {
		if row.Shard != i || !row.Ready || row.Epoch != 0 {
			t.Fatalf("shard row %d = %+v", i, row)
		}
	}

	// A rolling reload moves the fleet epoch and every shard's epoch.
	ix := bestjoin.NewIndex()
	ix.AddText(0, "alpha beta")
	sh.eng.SwapIndex(ix.Compact())
	rec = httptest.NewRecorder()
	sh.handleHealthz(rec, httptest.NewRequest("GET", "/healthz", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Epoch != 1 || h.Docs != 1 {
		t.Fatalf("post-reload health = %+v", h)
	}
	for _, row := range h.Shards {
		if row.Epoch != 1 {
			t.Fatalf("post-reload shard row = %+v", row)
		}
	}
}

// TestHandleStatsUnionNote pins the /stats degradation note: absent
// while every disjunctive query pruned, present once a kernel without
// a union bound forces an exhaustive union walk.
func TestHandleStatsUnionNote(t *testing.T) {
	s := demoServer(t)
	rec := httptest.NewRecorder()
	s.handleStats(rec, httptest.NewRequest("GET", "/stats", nil))
	if strings.Contains(rec.Body.String(), "Note") {
		t.Fatalf("fresh /stats already carries the union note: %s", rec.Body)
	}

	// A bare KernelFunc offers no union bound, so a pruning engine must
	// run the disjunction exhaustively and count it.
	unbounded := bestjoin.KernelFactory(func() bestjoin.JoinKernel {
		return bestjoin.JoinKernelFunc(func(ls bestjoin.MatchLists) (bestjoin.Matchset, float64, bool) {
			return nil, 1, true
		})
	})
	if _, err := s.eng.Search(context.Background(), bestjoin.EngineQuery{
		Concepts: []bestjoin.Concept{{"lenovo": 1}, {"nba": 1}},
		Join:     unbounded,
		K:        2,
		Mode:     bestjoin.ModeOR,
	}); err != nil {
		t.Fatal(err)
	}
	if st := s.eng.Stats(); st.UnionUnpruned == 0 {
		t.Fatal("unbounded disjunctive query not counted in UnionUnpruned")
	}
	rec = httptest.NewRecorder()
	s.handleStats(rec, httptest.NewRequest("GET", "/stats", nil))
	if !strings.Contains(rec.Body.String(), "without union pruning") {
		t.Fatalf("/stats missing the union-unpruned note: %s", rec.Body)
	}
}

// TestQueryPairServed pins the server-to-engine pair-index contract:
// a two-term query must reach the engine as a Spec-only query (a Join
// closure would win over Spec locally and suppress the pair path), so
// that when the queried pair was precomputed by buildPairs the engine
// serves it off the pair list — and the answer matches a pair-disabled
// server bitwise.
func TestQueryPairServed(t *testing.T) {
	ix := bestjoin.NewIndex()
	for d, body := range synthCorpus(200) {
		ix.AddText(d, body)
	}
	compact := ix.Compact()
	lex := bestjoin.BuiltinLexicon()
	buildPairs(compact, lex, "med", 0.1, 0)
	mk := func(nopairs bool) *server {
		return &server{
			eng: bestjoin.NewEngine(compact, bestjoin.EngineConfig{
				Workers: 2, DisablePairIndex: nopairs,
			}),
			lex: lex, fn: "med", alpha: 0.1, k: 3, timeout: 5 * time.Second,
		}
	}
	s, base := mk(false), mk(true)
	// quartz and ribbon are filler vocabulary — in nearly every synth
	// doc, so their pair is among the heaviest and always selected.
	got, err := s.query("quartz,ribbon", 3, s.mode, s.minMatch)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.query("quartz,ribbon", 3, base.mode, base.minMatch)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.eng.Stats(); st.PairServed != 1 {
		t.Fatalf("two-term query was not pair-served: %+v", st)
	}
	if st := base.eng.Stats(); st.PairServed != 0 {
		t.Fatal("pair-disabled server served off the pair list")
	}
	if len(got.Docs) != len(want.Docs) {
		t.Fatalf("pair-served %d docs, kernel %d", len(got.Docs), len(want.Docs))
	}
	for i := range got.Docs {
		if got.Docs[i].Doc != want.Docs[i].Doc || got.Docs[i].Score != want.Docs[i].Score {
			t.Fatalf("rank %d: pair-served (%d, %v) vs kernel (%d, %v)", i,
				got.Docs[i].Doc, got.Docs[i].Score, want.Docs[i].Doc, want.Docs[i].Score)
		}
	}
}
