package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"bestjoin"
)

func demoServer(t *testing.T) *server {
	t.Helper()
	ix := bestjoin.NewIndex()
	for d, body := range demoCorpus {
		ix.AddText(d, body)
	}
	return &server{
		eng:     bestjoin.NewEngine(ix.Compact(), bestjoin.EngineConfig{Workers: 2}),
		lex:     bestjoin.BuiltinLexicon(),
		fn:      "med",
		alpha:   0.1,
		k:       3,
		timeout: 5 * time.Second,
	}
}

func TestQueryRanksDemoCorpus(t *testing.T) {
	s := demoServer(t)
	res, err := s.query("lenovo,nba,partnership", 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Error("unexpected partial result")
	}
	if len(res.Docs) == 0 {
		t.Fatal("no documents returned")
	}
	// Document 0 holds all three concepts in one tight sentence; it
	// must outrank document 3, where they are scattered.
	if res.Docs[0].Doc != 0 {
		t.Errorf("top document %d, want 0", res.Docs[0].Doc)
	}
	if _, err := s.query(" , ", 3); err == nil {
		t.Error("empty term list did not error")
	}
}

func TestHandleQueryJSON(t *testing.T) {
	s := demoServer(t)
	rec := httptest.NewRecorder()
	s.handleQuery(rec, httptest.NewRequest("GET", "/query?terms=lenovo,nba&k=2", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var res bestjoin.EngineResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatalf("response is not EngineResult JSON: %v", err)
	}
	if len(res.Docs) == 0 || len(res.Docs) > 2 {
		t.Errorf("got %d docs, want 1..2", len(res.Docs))
	}

	rec = httptest.NewRecorder()
	s.handleQuery(rec, httptest.NewRequest("GET", "/query", nil))
	if rec.Code != 400 {
		t.Errorf("missing terms: status %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.handleQuery(rec, httptest.NewRequest("GET", "/query?terms=a&k=zero", nil))
	if rec.Code != 400 {
		t.Errorf("bad k: status %d, want 400", rec.Code)
	}
}

func TestREPLCommands(t *testing.T) {
	// The REPL reads *os.File; exercise the command dispatch through
	// query/stats directly plus a pipe-backed round trip.
	s := demoServer(t)
	if _, err := s.query("lenovo", 1); err != nil {
		t.Fatal(err)
	}
	st := s.eng.Stats()
	if st.Queries == 0 {
		t.Error("stats did not count the query")
	}
	b, err := json.Marshal(st)
	if err != nil || !strings.Contains(string(b), "Queries") {
		t.Errorf("stats JSON: %s, %v", b, err)
	}
}

func TestSynthCorpusDeterministicAndQueryable(t *testing.T) {
	a, b := synthCorpus(50), synthCorpus(50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("synthetic corpus not deterministic at doc %d", i)
		}
	}
	ix := bestjoin.NewIndex()
	for d, body := range a {
		ix.AddText(d, body)
	}
	s := demoServer(t)
	s.eng = bestjoin.NewEngine(ix.Compact(), bestjoin.EngineConfig{})
	res, err := s.query("lenovo,nba,partnership", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Docs) == 0 {
		t.Error("synthetic corpus yields no answers for the planted query")
	}
}

func TestRunServerGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		close(started)
		time.Sleep(200 * time.Millisecond)
		w.Write([]byte("done"))
	})
	hs := &http.Server{Handler: mux}

	serveErr := make(chan error, 1)
	go func() { serveErr <- runServer(hs, ln, 2*time.Second) }()

	// An in-flight request at signal time must be allowed to finish.
	reqErr := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err == nil {
			defer resp.Body.Close()
			if b, _ := io.ReadAll(resp.Body); string(b) != "done" {
				err = fmt.Errorf("drained request body %q, want %q", b, "done")
			}
		}
		reqErr <- err
	}()

	<-started
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("runServer did not return after SIGTERM")
	}
	if err := <-reqErr; err != nil {
		t.Fatalf("in-flight request: %v", err)
	}
	// The port must be closed once runServer returns.
	if _, err := http.Get("http://" + ln.Addr().String() + "/slow"); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}
