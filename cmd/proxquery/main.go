// Command proxquery runs a weighted proximity best-join query against
// a text document, printing the best matchset (and optionally all
// locally-best matchsets by anchor location).
//
//	proxquery -terms "pc maker,sports,partnership" article.txt
//	proxquery -terms "conference,date,place" -date 1 -place 2 -fn max cfp.txt
//	echo "..." | proxquery -terms "a,b" -all
//
// Query terms are matched against the document through the embedded
// lexical graph (exact stem = 1.0, one edge = 0.7, …, three edges =
// 0.1, the paper's WordNet rule). -date and -place replace the matcher
// at the given term index with the paper's DBWorld date and place
// matchers. Scoring defaults to the distance-from-median function;
// pick a family with -fn win|med|max.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"bestjoin"
)

func main() {
	var (
		terms = flag.String("terms", "", "comma-separated query terms (required)")
		fn    = flag.String("fn", "med", "scoring family: win, med, or max")
		alpha = flag.Float64("alpha", 0.1, "distance-decay rate for exp scoring functions")
		all   = flag.Bool("all", false, "print all locally-best matchsets by anchor location")
		min   = flag.Float64("min", math.Inf(-1), "with -all, only print anchors scoring at least this (default: no filter)")
		date  = flag.Int("date", -1, "term index to match with the date matcher")
		place = flag.Int("place", -1, "term index to match with the place matcher")
	)
	flag.Parse()
	if *terms == "" {
		fmt.Fprintln(os.Stderr, "proxquery: -terms is required")
		os.Exit(2)
	}
	body, err := readInput(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "proxquery: %v\n", err)
		os.Exit(1)
	}

	doc := bestjoin.NewDocument(body)
	lex := bestjoin.BuiltinLexicon()
	gz := bestjoin.BuiltinGazetteer()
	termList := strings.Split(*terms, ",")
	matchers := make([]bestjoin.Matcher, len(termList))
	for j, t := range termList {
		t = strings.TrimSpace(t)
		switch {
		case j == *date:
			matchers[j] = bestjoin.NewDateMatcher()
		case j == *place:
			matchers[j] = bestjoin.NewPlaceMatcher(gz, lex)
		default:
			matchers[j] = bestjoin.NewLexicalMatcher(t, lex)
		}
	}
	lists := doc.MatchQuery(matchers...)
	for j, l := range lists {
		fmt.Printf("term %q: %d matches\n", strings.TrimSpace(termList[j]), len(l))
	}

	if *all {
		printByLocation(doc, termList, lists, *fn, *alpha, *min)
		return
	}
	res, invocations := best(lists, *fn, *alpha)
	if !res.OK {
		fmt.Println("no valid matchset (some term has no usable match)")
		os.Exit(1)
	}
	fmt.Printf("best matchset (score %.4f, %d solver runs):\n", res.Score, invocations)
	printSet(doc, termList, res.Set)
}

func best(lists bestjoin.MatchLists, fn string, alpha float64) (bestjoin.Result, int) {
	switch fn {
	case "win":
		return bestjoin.BestValidWIN(bestjoin.ExpWIN{Alpha: alpha}, lists)
	case "max":
		return bestjoin.BestValidMAX(bestjoin.SumMAX{Alpha: alpha}, lists)
	default:
		return bestjoin.BestValidMED(bestjoin.ExpMED{Alpha: alpha}, lists)
	}
}

func printByLocation(doc bestjoin.Document, terms []string, lists bestjoin.MatchLists, fn string, alpha, min float64) {
	var anchored []bestjoin.Anchored
	switch fn {
	case "win":
		anchored = bestjoin.ByLocationWIN(bestjoin.ExpWIN{Alpha: alpha}, lists)
	case "max":
		anchored = bestjoin.ByLocationMAX(bestjoin.SumMAX{Alpha: alpha}, lists)
	default:
		anchored = bestjoin.ByLocationMED(bestjoin.ExpMED{Alpha: alpha}, lists)
	}
	kept, suppressed := filterAnchored(anchored, min)
	for _, a := range kept {
		fmt.Printf("anchor %d (score %.4f):\n", a.Anchor, a.Score)
		printSet(doc, terms, a.Set)
	}
	if suppressed > 0 {
		fmt.Printf("(%d anchors below -min %g suppressed)\n", suppressed, min)
	}
}

// filterAnchored splits anchors into those at or above min and a count
// of the rest. The default min is -Inf (keep everything): a 0 default
// would silently drop all anchors under scoring families with negative
// scores, such as the linear TREC instances.
func filterAnchored(anchored []bestjoin.Anchored, min float64) (kept []bestjoin.Anchored, suppressed int) {
	for _, a := range anchored {
		if a.Score < min {
			suppressed++
			continue
		}
		kept = append(kept, a)
	}
	return kept, suppressed
}

func printSet(doc bestjoin.Document, terms []string, set bestjoin.Matchset) {
	for j, m := range set {
		word := "?"
		if m.Loc >= 0 && m.Loc < len(doc.Tokens) {
			word = doc.Tokens[m.Loc].Word
		}
		fmt.Printf("  %-24s -> %q at token %d (score %.2f)\n",
			strings.TrimSpace(terms[j]), word, m.Loc, m.Score)
	}
}

func readInput(args []string) (string, error) {
	if len(args) == 0 {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(args[0])
	return string(b), err
}
