package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"bestjoin"
)

func sampleLists() bestjoin.MatchLists {
	return bestjoin.MatchLists{
		{{Loc: 1, Score: 0.9}},
		{{Loc: 3, Score: 0.8}},
	}
}

func TestBestDispatchesOnFamily(t *testing.T) {
	lists := sampleLists()
	for _, fam := range []string{"win", "med", "max", "anything-else-defaults-to-med"} {
		res, invocations := best(lists, fam, 0.1)
		if !res.OK {
			t.Errorf("family %q found no matchset", fam)
		}
		if invocations < 1 {
			t.Errorf("family %q reported %d invocations", fam, invocations)
		}
	}
	// Families must actually differ where the definitions differ: MAX
	// scores this instance differently from WIN.
	w, _ := best(lists, "win", 0.1)
	x, _ := best(lists, "max", 0.1)
	if w.Score == x.Score {
		t.Error("win and max produced identical scores on an asymmetric instance")
	}
}

func TestFilterAnchoredDefaultKeepsNegativeScores(t *testing.T) {
	anchored := []bestjoin.Anchored{
		{Anchor: 1, Score: -4.5},
		{Anchor: 3, Score: 0.2},
		{Anchor: 9, Score: -0.1},
	}
	// The default threshold (-Inf) must keep every anchor, including
	// the negative scores produced by the linear scoring families.
	kept, suppressed := filterAnchored(anchored, math.Inf(-1))
	if len(kept) != 3 || suppressed != 0 {
		t.Errorf("default filter kept %d, suppressed %d; want 3, 0", len(kept), suppressed)
	}
	// An explicit threshold still filters and reports what it dropped.
	kept, suppressed = filterAnchored(anchored, 0)
	if len(kept) != 1 || suppressed != 2 {
		t.Errorf("min=0 kept %d, suppressed %d; want 1, 2", len(kept), suppressed)
	}
	if kept[0].Anchor != 3 {
		t.Errorf("min=0 kept anchor %d; want 3", kept[0].Anchor)
	}
}

func TestReadInputFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "doc.txt")
	if err := os.WriteFile(path, []byte("hello world"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := readInput([]string{path})
	if err != nil || got != "hello world" {
		t.Fatalf("readInput = %q, %v", got, err)
	}
	if _, err := readInput([]string{filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Error("readInput on missing file did not error")
	}
}
