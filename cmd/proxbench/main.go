// Command proxbench regenerates the paper's evaluation artifacts: each
// figure (6–11), the Figure 12 table, and the DBWorld table. Run a
// single experiment with -exp, or everything:
//
//	proxbench -exp fig6
//	proxbench -exp all -format csv
//	proxbench -exp fig11 -trecdocs 1000
//
// Scale flags default to the paper's settings (500 synthetic documents
// per data point, 1000 TREC documents per query, 25 DBWorld messages).
// Match-list generation is excluded from all reported times, as in the
// paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bestjoin/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id: fig6..fig12, dbworld, ablations, or all")
		docs     = flag.Int("docs", 500, "synthetic documents per data point")
		trecDocs = flag.Int("trecdocs", 1000, "documents per TREC query")
		msgs     = flag.Int("msgs", 25, "DBWorld messages")
		seed     = flag.Int64("seed", 1, "workload seed")
		format   = flag.String("format", "text", "output format: text or csv")
	)
	flag.Parse()

	o := experiments.Options{SynthDocs: *docs, TRECDocs: *trecDocs, DBWorldMsgs: *msgs, Seed: *seed}
	var tables []experiments.Table
	if *exp == "all" {
		tables = experiments.All(o)
	} else {
		for _, id := range strings.Split(*exp, ",") {
			t, ok := experiments.ByID(strings.TrimSpace(id), o)
			if !ok {
				fmt.Fprintf(os.Stderr, "proxbench: unknown experiment %q (want fig6..fig12, dbworld, ablations, all)\n", id)
				os.Exit(2)
			}
			tables = append(tables, t)
		}
	}
	for _, t := range tables {
		switch *format {
		case "csv":
			fmt.Print(t.CSV())
		default:
			fmt.Println(t.Text())
		}
	}
}
