// Command proxgen generates the repository's workloads as JSON on
// stdout, for inspection or for feeding external tools:
//
//	proxgen -kind synth -docs 100 -terms 4 -matches 30 -lambda 2 -zipf 1.1
//	proxgen -kind trec -query Q2 -docs 50
//	proxgen -kind dbworld -msgs 25
//
// Synthetic output is the per-document match lists; corpus output is
// the raw document text plus ground-truth annotations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"bestjoin/internal/corpus"
	"bestjoin/internal/synth"
)

func main() {
	var (
		kind    = flag.String("kind", "synth", "workload kind: synth, trec, or dbworld")
		docs    = flag.Int("docs", 100, "documents to generate (synth, trec)")
		terms   = flag.Int("terms", 4, "query terms (synth)")
		matches = flag.Int("matches", 30, "total matches per document (synth)")
		lambda  = flag.Float64("lambda", 2.0, "duplicate-frequency knob (synth)")
		zipf    = flag.Float64("zipf", 1.1, "term-popularity skew (synth)")
		query   = flag.String("query", "Q1", "TREC query id Q1..Q7 (trec)")
		msgs    = flag.Int("msgs", 25, "messages to generate (dbworld)")
		seed    = flag.Int64("seed", 1, "generation seed")
	)
	flag.Parse()

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	switch *kind {
	case "synth":
		cfg := synth.DefaultConfig()
		cfg.Docs, cfg.Terms, cfg.Matches = *docs, *terms, *matches
		cfg.Lambda, cfg.ZipfS, cfg.Seed = *lambda, *zipf, *seed
		must(enc.Encode(synth.Generate(cfg)))
	case "trec":
		for _, q := range corpus.TRECQueries() {
			if q.ID == *query {
				must(enc.Encode(corpus.GenerateTREC(q, *docs, *seed)))
				return
			}
		}
		fmt.Fprintf(os.Stderr, "proxgen: unknown TREC query %q (want Q1..Q7)\n", *query)
		os.Exit(2)
	case "dbworld":
		must(enc.Encode(corpus.GenerateDBWorld(*msgs, *msgs*7/25, *seed)))
	default:
		fmt.Fprintf(os.Stderr, "proxgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
}

func must(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "proxgen: %v\n", err)
		os.Exit(1)
	}
}
