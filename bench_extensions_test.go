package bestjoin_test

// Ablation and extension benchmarks beyond the paper's figures: the
// duplicate-avoidance search optimizations, the streaming MED variant,
// the type-anchored model, posting-list compression, and the parallel
// batch API.

import (
	"fmt"
	"testing"

	"bestjoin"
	"bestjoin/internal/dedup"
	"bestjoin/internal/experiments"
	"bestjoin/internal/index"
	"bestjoin/internal/join"
	"bestjoin/internal/lexicon"
	"bestjoin/internal/match"
	"bestjoin/internal/scorefn"
)

// BenchmarkAblationDedupSearch isolates the two optimizations layered
// onto the paper's Section VI method: the subtree bound and instance
// memoization. Run on a duplicate-heavy workload (λ=1.5), where the
// search tree is deep. The reported invocations/doc metric shows how
// many solver reruns each configuration needs.
func BenchmarkAblationDedupSearch(b *testing.B) {
	docs := experiments.SynthWorkload(benchOptions(), 0, 0, 1.5, 0)
	fn := scorefn.ExpMED{Alpha: 0.1}
	alg := func(ls match.Lists) (match.Set, float64, bool) { return join.MED(fn, ls) }
	configs := []struct {
		name string
		opts dedup.Options
	}{
		{"plain", dedup.Options{}},
		{"prune", dedup.Options{Prune: true}},
		{"prune+memo", dedup.Options{Prune: true, Memoize: true}},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			invocations := 0
			for i := 0; i < b.N; i++ {
				for _, doc := range docs {
					invocations += dedup.BestWithOptions(alg, doc, cfg.opts).Invocations
				}
			}
			b.ReportMetric(float64(invocations)/float64(b.N*len(docs)), "invocations/doc")
		})
	}
}

// BenchmarkStreamMED compares the two-pass batch by-location MED with
// the score-bounded single-pass streaming variant.
func BenchmarkStreamMED(b *testing.B) {
	docs := experiments.SynthWorkload(benchOptions(), 4, 30, 0, 0)
	fn := bestjoin.ExpMED{Alpha: 0.1}
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, doc := range docs {
				bestjoin.ByLocationMED(fn, doc)
			}
		}
	})
	b.Run("stream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, doc := range docs {
				bestjoin.StreamMED(fn, 1.0, doc, func(bestjoin.Anchored) {})
			}
		}
	})
}

// BenchmarkTypeAnchored compares the Chakrabarti-style fixed-anchor
// model against the full maximize-over-location join.
func BenchmarkTypeAnchored(b *testing.B) {
	docs := experiments.SynthWorkload(benchOptions(), 4, 30, 0, 0)
	fn := bestjoin.SumMAX{Alpha: 0.1}
	b.Run("type-anchored", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, doc := range docs {
				bestjoin.BestTypeAnchored(fn, 0, doc)
			}
		}
	})
	b.Run("full-max", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, doc := range docs {
				bestjoin.BestMAX(fn, doc)
			}
		}
	})
}

// BenchmarkValidByLocation measures the Section VI + VII combination
// on duplicate-bearing documents.
func BenchmarkValidByLocation(b *testing.B) {
	docs := experiments.SynthWorkload(benchOptions(), 4, 30, 1.5, 0)
	fn := bestjoin.ExpMED{Alpha: 0.1}
	b.Run("unaware", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, doc := range docs {
				bestjoin.ByLocationMED(fn, doc)
			}
		}
	})
	b.Run("valid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, doc := range docs {
				bestjoin.ValidByLocationMED(fn, doc)
			}
		}
	})
}

// BenchmarkConceptList compares deriving a concept match list from raw
// postings against decoding it from the compressed representation —
// the storage/CPU trade a production index makes.
func BenchmarkConceptList(b *testing.B) {
	ix := index.New()
	g := lexicon.Builtin()
	body := "the conference will be held in turin with workshops and a symposium on data"
	for d := 0; d < 500; d++ {
		ix.AddText(d, body)
	}
	concept := index.ConceptFromGraph(g.Neighborhood("conference", 2), lexicon.ScorePerEdge)
	compact := ix.Compact()
	b.Run("raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.ConceptList(250, concept)
		}
	})
	b.Run("compressed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			compact.ConceptList(250, concept)
		}
	})
	b.Run("raw-bytes", func(b *testing.B) {
		// Whole-index raw footprint: two machine words per posting,
		// summed over every distinct stem of the corpus.
		raw := 0
		seen := map[string]bool{}
		for _, w := range []string{"the", "conference", "will", "be", "held", "in", "turin",
			"with", "workshops", "and", "a", "symposium", "on", "data"} {
			s := bestjoin.Stem(w)
			if !seen[s] {
				seen[s] = true
				raw += len(ix.Postings(w)) * 16
			}
		}
		b.ReportMetric(float64(raw), "bytes")
	})
	b.Run("compressed-bytes", func(b *testing.B) {
		b.ReportMetric(float64(compact.Bytes()), "bytes")
	})
}

// BenchmarkBatch measures the parallel speedup of the batch API over
// the default synthetic workload.
func BenchmarkBatch(b *testing.B) {
	docs := experiments.SynthWorkload(benchOptions(), 4, 30, 0, 0)
	fn := bestjoin.ExpMED{Alpha: 0.1}
	solve := func(ls bestjoin.MatchLists) bestjoin.Result { return bestjoin.BestMED(fn, ls) }
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bestjoin.Batch(docs, workers, solve)
			}
		})
	}
}

// BenchmarkCodec measures the match-list binary codec.
func BenchmarkCodec(b *testing.B) {
	doc := experiments.SynthWorkload(benchOptions(), 4, 40, 0, 0)[0]
	encoded := bestjoin.EncodeLists(doc)
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bestjoin.EncodeLists(doc)
		}
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bestjoin.DecodeLists(encoded); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("size", func(b *testing.B) {
		b.ReportMetric(float64(len(encoded)), "bytes")
		b.ReportMetric(float64(doc.TotalSize()*16), "raw-bytes")
	})
}

// BenchmarkKBestWIN measures the k-best WIN join's cost growth with k.
func BenchmarkKBestWIN(b *testing.B) {
	docs := experiments.SynthWorkload(benchOptions(), 4, 30, 0, 0)
	fn := bestjoin.ExpWIN{Alpha: 0.1}
	for _, k := range []int{1, 5, 20} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, doc := range docs {
					bestjoin.KBestWIN(fn, doc, k)
				}
			}
		})
	}
}
