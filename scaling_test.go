package bestjoin_test

import (
	"math/rand"
	"testing"
	"time"

	"bestjoin"
)

// bigInstance builds one large join instance: total matches spread
// over q terms across a long document.
func bigInstance(q, total, docLen int, seed int64) bestjoin.MatchLists {
	rng := rand.New(rand.NewSource(seed))
	lists := make(bestjoin.MatchLists, q)
	for i := 0; i < total; i++ {
		j := rng.Intn(q)
		lists[j] = append(lists[j], bestjoin.Match{Loc: rng.Intn(docLen), Score: 1 - rng.Float64()})
	}
	for j := range lists {
		lists[j].Sort()
	}
	return lists
}

// The paper's complexity claims at scale: the proposed algorithms must
// chew through instances far beyond what the cross product could ever
// touch (100k matches across 4 lists would be ~10^18 matchsets), in
// time roughly linear in the input. Wall-clock bounds are deliberately
// loose — this is a does-not-blow-up test, not a microbenchmark.
func TestLargeInstanceLinearBehaviour(t *testing.T) {
	if testing.Short() {
		t.Skip("large-instance test skipped in -short mode")
	}
	const q = 4
	small := bigInstance(q, 10_000, 200_000, 1)
	large := bigInstance(q, 100_000, 2_000_000, 2)

	type solver struct {
		name string
		run  func(bestjoin.MatchLists)
	}
	solvers := []solver{
		{"WIN", func(ls bestjoin.MatchLists) { bestjoin.BestWIN(bestjoin.ExpWIN{Alpha: 0.01}, ls) }},
		{"MED", func(ls bestjoin.MatchLists) { bestjoin.BestMED(bestjoin.ExpMED{Alpha: 0.01}, ls) }},
		{"MAX", func(ls bestjoin.MatchLists) { bestjoin.BestMAX(bestjoin.SumMAX{Alpha: 0.01}, ls) }},
	}
	for _, s := range solvers {
		start := time.Now()
		s.run(small)
		smallTime := time.Since(start)
		start = time.Now()
		s.run(large)
		largeTime := time.Since(start)
		if largeTime > 5*time.Second {
			t.Errorf("%s took %v on 100k matches — not linear-ish", s.name, largeTime)
		}
		// 10x input should cost well under 100x time (quadratic would
		// be ~100x); allow generous scheduling noise.
		if smallTime > 10*time.Millisecond && largeTime > 40*smallTime {
			t.Errorf("%s scaled %v -> %v for 10x input", s.name, smallTime, largeTime)
		}
	}

	// By-location solvers over the large instance must also complete
	// promptly and agree on the anchor count invariant.
	start := time.Now()
	anchors := bestjoin.ByLocationMAX(bestjoin.SumMAX{Alpha: 0.01}, large)
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("ByLocationMAX took %v on 100k matches", d)
	}
	if len(anchors) == 0 {
		t.Error("ByLocationMAX returned nothing on a complete instance")
	}
}
