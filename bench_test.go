package bestjoin_test

// One testing.B benchmark per table and figure of the paper's
// Section VIII evaluation, plus ablation benchmarks for the design
// choices DESIGN.md calls out. Workloads are materialized outside the
// timed loops (the paper excludes match-list generation from its
// timings); each iteration processes the full document set of one data
// point, so ns/op is directly proportional to the paper's
// total-execution-time axis.
//
// Run everything:   go test -bench=. -benchmem
// One figure:       go test -bench=BenchmarkFig6
//
// cmd/proxbench prints the same numbers as tables at paper scale.

import (
	"fmt"
	"testing"

	"bestjoin"
	"bestjoin/internal/experiments"
	"bestjoin/internal/match"
	"bestjoin/internal/scorefn"
)

// benchOptions keeps per-iteration work small enough for `go test
// -bench=.` while preserving every trend; cmd/proxbench runs the
// paper-scale version.
func benchOptions() experiments.Options {
	return experiments.Options{SynthDocs: 50, TRECDocs: 50, DBWorldMsgs: 25, Seed: 1}
}

var synthAlgorithms = []string{"WIN", "MED", "MAX", "NWIN", "NMED", "NMAX"}

// BenchmarkFig6 regenerates Figure 6: execution time as the number of
// query terms grows from 2 to 7, for all six algorithms.
func BenchmarkFig6(b *testing.B) {
	for terms := 2; terms <= 7; terms++ {
		docs := experiments.SynthWorkload(benchOptions(), terms, 0, 0, 0)
		for _, alg := range synthAlgorithms {
			b.Run(fmt.Sprintf("terms=%d/%s", terms, alg), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					experiments.RunSynth(alg, docs)
				}
			})
		}
	}
}

// BenchmarkFig7 regenerates Figure 7: execution time as the total
// match-list size per document grows from 10 to 40.
func BenchmarkFig7(b *testing.B) {
	for _, matches := range []int{10, 20, 30, 40} {
		docs := experiments.SynthWorkload(benchOptions(), 0, matches, 0, 0)
		for _, alg := range synthAlgorithms {
			b.Run(fmt.Sprintf("matches=%d/%s", matches, alg), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					experiments.RunSynth(alg, docs)
				}
			})
		}
	}
}

// BenchmarkFig8 regenerates Figure 8: the number of duplicate-unaware
// solver invocations per document as λ varies, reported as the
// "invocations/doc" metric alongside the timing.
func BenchmarkFig8(b *testing.B) {
	for _, lambda := range []float64{1.0, 1.5, 2.0, 2.5, 3.0} {
		docs := experiments.SynthWorkload(benchOptions(), 0, 0, lambda, 0)
		for _, alg := range []string{"WIN", "MED", "MAX"} {
			b.Run(fmt.Sprintf("lambda=%.1f/%s", lambda, alg), func(b *testing.B) {
				invocations := 0
				for i := 0; i < b.N; i++ {
					invocations += experiments.RunSynth(alg, docs)
				}
				b.ReportMetric(float64(invocations)/float64(b.N*len(docs)), "invocations/doc")
			})
		}
	}
}

// BenchmarkFig9 regenerates Figure 9: execution time as the duplicate
// frequency decreases (λ from 1.0 to 3.0).
func BenchmarkFig9(b *testing.B) {
	for _, lambda := range []float64{1.0, 2.0, 3.0} {
		docs := experiments.SynthWorkload(benchOptions(), 0, 0, lambda, 0)
		for _, alg := range synthAlgorithms {
			b.Run(fmt.Sprintf("lambda=%.1f/%s", lambda, alg), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					experiments.RunSynth(alg, docs)
				}
			})
		}
	}
}

// BenchmarkFig10 regenerates Figure 10: execution time as the Zipf
// skew of term popularity increases; the naive algorithms catch up
// only at s=4.
func BenchmarkFig10(b *testing.B) {
	for _, s := range []float64{1.1, 2.0, 3.0, 4.0} {
		docs := experiments.SynthWorkload(benchOptions(), 0, 0, 0, s)
		for _, alg := range synthAlgorithms {
			b.Run(fmt.Sprintf("s=%.1f/%s", s, alg), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					experiments.RunSynth(alg, docs)
				}
			})
		}
	}
}

// BenchmarkFig11 regenerates Figure 11: per-query execution times over
// the simulated TREC topics. WIN is benchmarked only for the four-term
// queries (Q1, Q2) — for three terms or fewer the paper invokes MED in
// its place.
func BenchmarkFig11(b *testing.B) {
	workloads := experiments.TRECWorkloads(benchOptions())
	for _, w := range workloads {
		algs := []string{"MED", "MAX", "NWIN", "NMED", "NMAX"}
		if w.Terms >= 4 {
			algs = append(algs, "WIN")
		}
		for _, alg := range algs {
			b.Run(fmt.Sprintf("%s/%s", w.ID, alg), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					experiments.RunTREC(alg, w.Docs)
				}
			})
		}
	}
}

// BenchmarkFig12 regenerates the document-ranking work behind the
// Figure 12 answer-rank columns: scoring every document of a topic by
// its best valid matchset.
func BenchmarkFig12(b *testing.B) {
	workloads := experiments.TRECWorkloads(benchOptions())
	for _, w := range workloads {
		b.Run(w.ID+"/MED", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiments.RunTREC("MED", w.Docs)
			}
		})
	}
}

// BenchmarkDBWorld regenerates the DBWorld table timings: the
// three-term CFP query over 25 messages with huge place lists.
func BenchmarkDBWorld(b *testing.B) {
	docs := experiments.DBWorldWorkload(benchOptions())
	for _, alg := range []string{"WIN", "MAX", "NWIN", "NMED", "NMAX"} {
		b.Run(alg, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiments.RunDBWorld(alg, docs)
			}
		})
	}
}

// --- Ablation benchmarks -------------------------------------------

// BenchmarkAblationMEDPrecompute isolates the value of Algorithm 2's
// stack precomputation: "with" uses the linear-time dominating-match
// lists; "without" finds each dominating match by scanning the full
// list at every location — the quadratic behaviour the paper's
// precomputation step exists to avoid.
func BenchmarkAblationMEDPrecompute(b *testing.B) {
	docs := experiments.SynthWorkload(benchOptions(), 0, 40, 0, 0)
	fn := bestjoin.ExpMED{Alpha: 0.1}
	b.Run("with-precompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, doc := range docs {
				bestjoin.BestMED(fn, doc)
			}
		}
	})
	b.Run("without-precompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, doc := range docs {
				medNoPrecompute(fn, doc)
			}
		}
	})
}

// medNoPrecompute is the quadratic MED variant: per match, per term, a
// full scan for the dominating match at that location.
func medNoPrecompute(fn scorefn.MED, lists match.Lists) (match.Set, float64, bool) {
	q := len(lists)
	if !lists.Complete() {
		return nil, 0, false
	}
	var best match.Set
	bestScore := 0.0
	found := false
	cand := make(match.Set, q)
	medianRank := match.MedianRank(q)
	match.Merge(lists, func(ev match.Event) bool {
		cand[ev.Term] = ev.M
		following := 0
		for j := range lists {
			if j == ev.Term {
				continue
			}
			// Full scan: the work the precomputation avoids.
			bestC := scorefn.MEDContribution(fn, j, lists[j][0], ev.M.Loc)
			bestM := lists[j][0]
			bestPos := 0
			for pos, m := range lists[j][1:] {
				if c := scorefn.MEDContribution(fn, j, m, ev.M.Loc); c >= bestC {
					bestC, bestM, bestPos = c, m, pos+1
				}
			}
			cand[j] = bestM
			if bestM.Loc > ev.M.Loc || (bestM.Loc == ev.M.Loc && (j > ev.Term || (j == ev.Term && bestPos > ev.Pos))) {
				following++
			}
		}
		if following+1 == medianRank {
			if sc := scorefn.ScoreMED(fn, cand); !found || sc > bestScore {
				best, bestScore, found = cand.Clone(), sc, true
			}
		}
		return true
	})
	return best, bestScore, found
}

// BenchmarkAblationMAXGeneral compares the specialized MAX algorithm
// (Section V) against the general envelope approach (Lemma 2), whose
// cost grows with the location domain rather than the list sizes.
func BenchmarkAblationMAXGeneral(b *testing.B) {
	docs := experiments.SynthWorkload(benchOptions(), 0, 30, 0, 0)
	fn := bestjoin.SumMAX{Alpha: 0.1}
	b.Run("specialized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, doc := range docs {
				bestjoin.BestMAX(fn, doc)
			}
		}
	})
	b.Run("general", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, doc := range docs {
				bestjoin.BestMAXGeneral(fn, doc)
			}
		}
	})
}

// BenchmarkAblationSkewSwitch evaluates the paper's Section VIII fix
// for extreme skew: "if all match lists but one contain no more than
// one match each, we switch to a naive algorithm". At s=4 the switch
// matches the naive advantage; at s=1.1 it must not trigger.
func BenchmarkAblationSkewSwitch(b *testing.B) {
	fn := bestjoin.ExpMED{Alpha: 0.1}
	for _, s := range []float64{1.1, 4.0} {
		docs := experiments.SynthWorkload(benchOptions(), 0, 0, 0, s)
		b.Run(fmt.Sprintf("s=%.1f/always-fast", s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, doc := range docs {
					bestjoin.BestMED(fn, doc)
				}
			}
		})
		b.Run(fmt.Sprintf("s=%.1f/with-switch", s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, doc := range docs {
					if skewed(doc) {
						bestjoin.NaiveMED(fn, doc)
					} else {
						bestjoin.BestMED(fn, doc)
					}
				}
			}
		})
	}
}

// skewed reports whether all match lists but one contain at most one
// match.
func skewed(lists match.Lists) bool {
	big := 0
	for _, l := range lists {
		if len(l) > 1 {
			big++
		}
	}
	return big <= 1
}

// BenchmarkJoinSingleDocument measures the three fast algorithms and
// their baselines on one document at the paper's default shape (4
// terms, 30 matches) — the per-document cost behind every figure.
func BenchmarkJoinSingleDocument(b *testing.B) {
	doc := experiments.SynthWorkload(benchOptions(), 4, 30, 0, 0)[0]
	b.Run("WIN", func(b *testing.B) {
		fn := bestjoin.ExpWIN{Alpha: 0.1}
		for i := 0; i < b.N; i++ {
			bestjoin.BestWIN(fn, doc)
		}
	})
	b.Run("MED", func(b *testing.B) {
		fn := bestjoin.ExpMED{Alpha: 0.1}
		for i := 0; i < b.N; i++ {
			bestjoin.BestMED(fn, doc)
		}
	})
	b.Run("MAX", func(b *testing.B) {
		fn := bestjoin.SumMAX{Alpha: 0.1}
		for i := 0; i < b.N; i++ {
			bestjoin.BestMAX(fn, doc)
		}
	})
	b.Run("NWIN", func(b *testing.B) {
		fn := bestjoin.ExpWIN{Alpha: 0.1}
		for i := 0; i < b.N; i++ {
			bestjoin.NaiveWIN(fn, doc)
		}
	})
	b.Run("NMED", func(b *testing.B) {
		fn := bestjoin.ExpMED{Alpha: 0.1}
		for i := 0; i < b.N; i++ {
			bestjoin.NaiveMED(fn, doc)
		}
	})
	b.Run("NMAX", func(b *testing.B) {
		fn := bestjoin.SumMAX{Alpha: 0.1}
		for i := 0; i < b.N; i++ {
			bestjoin.NaiveMAX(fn, doc)
		}
	})
}

// BenchmarkByLocation measures the Section VII by-location solvers on
// the default document shape.
func BenchmarkByLocation(b *testing.B) {
	doc := experiments.SynthWorkload(benchOptions(), 4, 30, 0, 0)[0]
	b.Run("WIN", func(b *testing.B) {
		fn := bestjoin.ExpWIN{Alpha: 0.1}
		for i := 0; i < b.N; i++ {
			bestjoin.ByLocationWIN(fn, doc)
		}
	})
	b.Run("MED", func(b *testing.B) {
		fn := bestjoin.ExpMED{Alpha: 0.1}
		for i := 0; i < b.N; i++ {
			bestjoin.ByLocationMED(fn, doc)
		}
	})
	b.Run("MAX", func(b *testing.B) {
		fn := bestjoin.SumMAX{Alpha: 0.1}
		for i := 0; i < b.N; i++ {
			bestjoin.ByLocationMAX(fn, doc)
		}
	})
}
